(** Plan printer in the paper's notation —
    [Op\[params\]{dependents}(inputs)] — indented one operator per line as
    in the paper's plan listings (P1, P1', P2, ...). *)

val pp : ?indent:int -> Format.formatter -> Algebra.plan -> unit

val to_string : Algebra.plan -> string

val node_label : Algebra.plan -> string
(** One-line operator label (the first line of {!pp} without children),
    used to label the nodes of an instrumented plan. *)

val analyze_to_string : Xqc_obs.Obs.op_node -> string
(** EXPLAIN ANALYZE rendering of an instrumented plan: the indented
    operator tree annotated with call counts, cumulative time, output
    cardinality and join build/probe statistics. *)

val size : Algebra.plan -> int
(** Number of operators in the plan. *)

val operator_names : Algebra.plan -> string list
(** The multiset of operator names, preorder — used by tests to assert
    plan shapes (e.g. one GroupBy, one LOuterJoin, no MapConcat). *)

(** {1 Physical plans} *)

val pstep_label : Physical.pstep -> string
(** [IndexScan\[descendant::item\]] / [TreeWalk\[child::name\]]. *)

val physical_label : Physical.t -> string
(** One-line label of a physical operator.  Mirror operators reuse the
    logical labels; strategy-carrying operators name their choice
    ([PHashJoin<eq>\[build=left\]], [StreamSelect\[limit=1\]], ...). *)

val physical_to_string : Physical.t -> string
(** The physical plan, one operator per line with the planner's
    estimated output cardinality and cumulative cost. *)

val physical_query_to_string : Physical.query -> string
(** All planned plans of a query (functions, globals, main). *)
