(** Plan printer in the paper's notation —
    [Op\[params\]{dependents}(inputs)] — indented one operator per line as
    in the paper's plan listings (P1, P1', P2, ...). *)

val join_alg_to_string : Algebra.join_algorithm -> string

val pp : ?indent:int -> Format.formatter -> Algebra.plan -> unit

val to_string : Algebra.plan -> string

val node_label : Algebra.plan -> string
(** One-line operator label (the first line of {!pp} without children),
    used to label the nodes of an instrumented plan. *)

val analyze_to_string : Xqc_obs.Obs.op_node -> string
(** EXPLAIN ANALYZE rendering of an instrumented plan: the indented
    operator tree annotated with call counts, cumulative time, output
    cardinality and join build/probe statistics. *)

val size : Algebra.plan -> int
(** Number of operators in the plan. *)

val operator_names : Algebra.plan -> string list
(** The multiset of operator names, preorder — used by tests to assert
    plan shapes (e.g. one GroupBy, one LOuterJoin, no MapConcat). *)
