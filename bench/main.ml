(* Benchmark harness: regenerates every table of the paper's evaluation
   (Section 7).

     main.exe table3    — Table 3: XMark Q1-20 total time on a 1MB document
                          under the four engine configurations
     main.exe table4    — Table 4: scalability of Q8/Q9/Q10/Q12/Q20,
                          NL join vs XQuery hash/sort join
     main.exe table5    — Table 5: Clio N2/N3/N4 on a 250KB document
     main.exe figure4   — Figure 4: GroupBy input/output on the paper's
                          avg example, plus the P2-style plan
     main.exe saxon     — the Section 7 prose comparison (XMark 1-20,
                          optimized engine vs the Saxon stand-in)
     main.exe ablation  — extra: decomposition of the optimizations
     main.exe metrics   — per-query JSON metric records (phase timings,
                          rewrite firings, join accounting, GC heap
                          footprint); --json=FILE
     main.exe early-exit — streaming early-termination microbenchmark:
                          existential/positional queries, streamed vs
                          fully materialized, pulled-tuple counts from
                          the obs collector; --json=FILE
     main.exe axis-index — structural-index microbenchmark: descendant/
                          child axis queries with the per-root name
                          indexes forced on vs off, plus the fn:doc
                          document-cache measurement; --json=FILE
     main.exe fused     — fused-tier microbenchmark: scan/filter/
                          aggregate queries with the bytecode tier
                          forced on vs off; --json=FILE
     main.exe scale     — intra-query parallelism: scan/join/aggregate
                          queries at domain budgets 1/2/4, speedups and
                          partition-task counts; writes
                          bench/BENCH_scale.json (or --json=FILE)
     main.exe offload   — relational-backend offload: XMark Q8/Q9 plus
                          group-by/order-by shapes under the native, rel
                          and auto backends, with byte-identity checks;
                          writes bench/BENCH_offload.json (or
                          --json=FILE)
     main.exe update    — update microbenchmark: small XQUF updates on a
                          1MB XMark document, incremental index
                          maintenance vs reparse-on-write; writes
                          bench/BENCH_update.json (or --json=FILE)
     main.exe micro     — bechamel microbenchmarks of the join kernels
     main.exe all       — everything above except micro

   Whole-query times are wall-clock measurements of single runs (the
   paper's methodology); each cell runs in a forked child with a timeout
   so that deliberately quadratic configurations print ">Ns" like the
   paper's ">1h" cells.  Pass --paper for the paper's document sizes
   (10/20/50MB in Table 4; the default scales them down 10x so the
   quadratic cells finish in CI time — growth shape is unaffected). *)

let cell_timeout = ref 240.0
let paper_scale = ref false

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let format_time (s : float) : string =
  if s >= 3600.0 then Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)
  else if s >= 60.0 then Printf.sprintf "%dm%04.1fs" (int_of_float s / 60) (Float.rem s 60.0)
  else Printf.sprintf "%.2fs" s

(* Run [f] in a forked child with a timeout; the child reports the
   elapsed seconds through a pipe.  Timed-out children are killed. *)
let measure ?(timeout = !cell_timeout) (f : unit -> unit) :
    [ `Time of float | `Timeout | `Failed of string ] =
  flush stdout;
  flush stderr;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let result =
        try
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.sprintf "T %f" (Unix.gettimeofday () -. t0)
        with e -> "E " ^ Printexc.to_string e
      in
      let oc = Unix.out_channel_of_descr wr in
      output_string oc result;
      flush oc;
      Unix.close wr;
      (* _exit: skip at_exit handlers so the child does not re-flush the
         parent's inherited stdout buffer *)
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait_child () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then (
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid);
              None)
            else (
              ignore (Unix.select [] [] [] 0.05);
              wait_child ())
        | _, _ -> Some ()
      in
      let finished = wait_child () in
      let buf = Buffer.create 64 in
      let chunk = Bytes.create 256 in
      (try
         let rec drain () =
           (* the child has exited (or been killed); the pipe drains
              without blocking indefinitely *)
           match Unix.select [ rd ] [] [] 0.2 with
           | [ _ ], _, _ ->
               let n = Unix.read rd chunk 0 256 in
               if n > 0 then (
                 Buffer.add_subbytes buf chunk 0 n;
                 drain ())
           | _ -> ()
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Unix.close rd;
      let payload = Buffer.contents buf in
      match finished with
      | None -> `Timeout
      | Some () ->
          if String.length payload > 2 && payload.[0] = 'T' then
            `Time (float_of_string (String.trim (String.sub payload 2 (String.length payload - 2))))
          else if String.length payload > 2 then
            `Failed (String.sub payload 2 (String.length payload - 2))
          else `Failed "no result from child"

let cell ?(timeout = !cell_timeout) (f : unit -> unit) : string =
  match measure ~timeout f with
  | `Time t -> format_time t
  | `Timeout -> Printf.sprintf "> %s" (format_time timeout)
  | `Failed m -> "FAILED: " ^ m

(* ------------------------------------------------------------------ *)
(* Shared set-up                                                       *)
(* ------------------------------------------------------------------ *)

let strategies_t3 =
  [
    ("No algebra", Xqc.No_algebra);
    ("Algebra + no optim", Xqc.Algebra_unoptimized);
    ("Optim + nested-loop joins", Xqc.Optimized_nl);
    ("Optim + XQuery joins", Xqc.Optimized);
  ]

let make_xmark_ctx doc =
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];
  ctx

let run_query strategy ctx q =
  ignore (Xqc.run (Xqc.prepare ~strategy q) ctx)

let run_and_serialize strategy ctx q =
  ignore (Xqc.serialize (Xqc.run (Xqc.prepare ~strategy q) ctx))

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

(* Total time for all twenty XMark queries on a 1MB document, including
   parsing the document once and serializing every result. *)
let table3 () =
  let size = 1_000_000 in
  Printf.printf "\n=== Table 3: XMark Q1-20 total time, %dKB document ===\n"
    (size / 1000);
  Printf.printf "(includes document load and result serialization, as in the paper)\n\n";
  let xml = Xqc_workload.Xmark.generate_string ~target_bytes:size () in
  Printf.printf "%-28s %s\n" "Implementation" "Total time";
  List.iter
    (fun (label, strategy) ->
      let result =
        cell (fun () ->
            let doc = Xqc.parse_document ~uri:"xmark.xml" xml in
            let ctx = make_xmark_ctx doc in
            List.iter
              (fun (_, q) -> run_and_serialize strategy ctx q)
              Xqc_workload.Xmark_queries.all)
      in
      Printf.printf "%-28s %s\n" label result)
    strategies_t3

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

(* Query evaluation time only (document pre-loaded, serialization
   excluded) for the join queries at increasing document sizes. *)
let table4 () =
  let sizes =
    if !paper_scale then [ 10_000_000; 20_000_000; 50_000_000 ]
    else [ 1_000_000; 2_000_000; 5_000_000 ]
  in
  let queries = [ "Q8"; "Q9"; "Q10"; "Q12"; "Q20" ] in
  Printf.printf "\n=== Table 4: scalability of selected XMark queries ===\n";
  Printf.printf "(evaluation time only; document load excluded)\n\n";
  Printf.printf "%-6s %-8s %-12s %-12s\n" "Query" "Size" "NL Join" "XQuery Join";
  let docs =
    List.map
      (fun size ->
        let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
        (size, doc))
      sizes
  in
  List.iter
    (fun qname ->
      let q = Xqc_workload.Xmark_queries.find qname in
      List.iter
        (fun (size, doc) ->
          let ctx = make_xmark_ctx doc in
          let nl = cell (fun () -> run_query Xqc.Optimized_nl ctx q) in
          let hash = cell (fun () -> run_query Xqc.Optimized ctx q) in
          Printf.printf "%-6s %-8s %-12s %-12s\n" qname
            (Printf.sprintf "%dMB"
               (int_of_float (Float.round (float_of_int size /. 1_000_000.))))
            nl hash)
        docs)
    queries

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let table5 () =
  let size = 250_000 in
  Printf.printf "\n=== Table 5: Clio queries on a %dKB document ===\n" (size / 1000);
  Printf.printf "(Saxon 8.1.1 column reproduced by the indexed Core interpreter; see DESIGN.md)\n\n";
  Printf.printf "%-6s %-12s %-12s %-12s %-14s\n" "Query" "No optim" "NL Join"
    "Hash Join" "Saxon-like";
  let doc = Xqc_workload.Clio.generate ~target_bytes:size () in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "doc" [ Xqc.Item.Node doc ];
  List.iter
    (fun (name, q) ->
      let run strategy = cell (fun () -> run_query strategy ctx q) in
      let no_optim = run Xqc.Algebra_unoptimized in
      let nl = run Xqc.Optimized_nl in
      let hash = run Xqc.Optimized in
      let saxon = run Xqc.Saxon_like in
      Printf.printf "%-6s %-12s %-12s %-12s %-14s\n" name no_optim nl hash saxon)
    [ ("N2", Xqc_workload.Clio.n2); ("N3", Xqc_workload.Clio.n3);
      ("N4", Xqc_workload.Clio.n4) ]

(* ------------------------------------------------------------------ *)
(* Figure 4                                                            *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  Printf.printf "\n=== Figure 4 / Section 5 example: the XQuery GroupBy ===\n\n";
  let q =
    "for $x in (1,1,3) let $a := avg(for $y in (1,2) where $x <= $y return $y \
     * 10) return ($x, $a)"
  in
  Printf.printf "Query: %s\n\n" q;
  Printf.printf "%s\n" (Xqc.explain ~strategy:Xqc.Optimized q);
  let result = Xqc.eval_string ~strategy:Xqc.Optimized q in
  Printf.printf "Result: %s   (paper expects: 1 15 1 15 3)\n" (Xqc.serialize result)

(* ------------------------------------------------------------------ *)
(* Saxon comparison (Section 7 prose)                                  *)
(* ------------------------------------------------------------------ *)

let saxon () =
  let size = if !paper_scale then 10_000_000 else 2_000_000 in
  Printf.printf
    "\n=== Section 7 prose: XMark Q1-20 on a %dMB document, optimized engine \
     vs Saxon stand-in ===\n\n"
    (size / 1_000_000);
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let total strategy =
    cell (fun () ->
        List.iter
          (fun (_, q) -> run_and_serialize strategy ctx q)
          Xqc_workload.Xmark_queries.all)
  in
  Printf.printf "%-28s %s\n" "Galax-style (optimized)" (total Xqc.Optimized);
  Printf.printf "%-28s %s\n" "Saxon stand-in (indexed)" (total Xqc.Saxon_like)

(* ------------------------------------------------------------------ *)
(* Ablation (extra)                                                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  Printf.printf "\n=== Ablation: decomposing the optimizations (extra) ===\n\n";
  let xdoc = Xqc_workload.Xmark.generate ~target_bytes:1_000_000 () in
  let xctx = make_xmark_ctx xdoc in
  let ddoc = Xqc_workload.Clio.generate ~target_bytes:250_000 () in
  let dctx = Xqc.context () in
  Xqc.bind_variable dctx "doc" [ Xqc.Item.Node ddoc ];
  let row label ctx q =
    Printf.printf "%s\n" label;
    List.iter
      (fun (slabel, strategy) ->
        Printf.printf "  %-26s %s\n" slabel
          (cell (fun () -> run_query strategy ctx q)))
      [
        ("interpreter (dyn env)", Xqc.No_algebra);
        ("interpreter + index", Xqc.Saxon_like);
        ("algebra, no rewriting", Xqc.Algebra_unoptimized);
        ("unnesting, NL joins", Xqc.Optimized_nl);
        ("unnesting, XQuery joins", Xqc.Optimized);
      ]
  in
  row "XMark Q8 (equi-join + group-by), 1MB" xctx (Xqc_workload.Xmark_queries.q8);
  row "XMark Q12 (inequality join -> sort join), 1MB" xctx (Xqc_workload.Xmark_queries.q12);
  row "Clio N3 (3-way join, triple nesting), 250KB" dctx Xqc_workload.Clio.n3;
  (* tuple-field access: compiled slots vs dynamic lookup (the paper's
     "direct compiled memory access" claim), on a query with many field
     reads per tuple *)
  Printf.printf "XMark Q10 (field-access heavy), 1MB
";
  Printf.printf "  %-26s %s
" "compiled slot access"
    (cell (fun () -> run_query Xqc.Optimized xctx (Xqc_workload.Xmark_queries.q10)));
  Printf.printf "  %-26s %s
" "dynamic field lookup"
    (cell (fun () ->
         Xqc.Eval.dynamic_field_lookup := true;
         Fun.protect
           ~finally:(fun () -> Xqc.Eval.dynamic_field_lookup := false)
           (fun () -> run_query Xqc.Optimized xctx (Xqc_workload.Xmark_queries.q10))));
  (* document projection (Marian-Simeon), measured on parse + narrow query *)
  Printf.printf "Document projection: XMark Q6 (count of items), 2MB
";
  let xdoc2 = Xqc_workload.Xmark.generate ~target_bytes:2_000_000 () in
  let ctx2 = make_xmark_ctx xdoc2 in
  Printf.printf "  %-26s %s
" "without projection"
    (cell (fun () ->
         for _ = 1 to 50 do
           ignore (Xqc.run (Xqc.prepare (Xqc_workload.Xmark_queries.find "Q6")) ctx2)
         done));
  Printf.printf "  %-26s %s
" "with projection (amortized)"
    (cell (fun () ->
         let p = Xqc.prepare ~project:true (Xqc_workload.Xmark_queries.find "Q6") in
         for _ = 1 to 50 do
           ignore (Xqc.run p ctx2)
         done))

(* ------------------------------------------------------------------ *)
(* Per-query metric records (observability)                            *)
(* ------------------------------------------------------------------ *)

(* One JSON record per (query, strategy): phase timings, rewrite-rule
   firings and join accounting from the statistics collector, plus the
   result cardinality.  Written as JSON lines to stdout or --json=FILE,
   ready for ingestion by plotting / regression-tracking scripts. *)
let metrics_json_file = ref None

let metrics () =
  let module Obs = Xqc_obs.Obs in
  let size = 100_000 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  Printf.eprintf
    "=== Per-query metric records: XMark Q1-20, %dKB document, all strategies ===\n"
    (size / 1000);
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun strategy ->
          match
            (* GC deltas around prepare+run make the memory footprint of
               each (query, strategy) visible in the bench trajectory:
               allocation shrinks when the pipeline streams instead of
               materializing intermediate tables.  Gc.allocated_bytes is
               exact per allocation; Gc.stat (not quick_stat, whose
               counters only refresh at major slices) gives an accurate
               peak after the run. *)
            let a0 = Gc.allocated_bytes () in
            let prepared = Xqc.prepare ~strategy ~stats:true q in
            let result = Xqc.run prepared ctx in
            let a1 = Gc.allocated_bytes () in
            (prepared, result, a1 -. a0, Gc.stat ())
          with
          | prepared, result, alloc_bytes, g ->
              let word = float_of_int (Sys.word_size / 8) in
              let gc_json =
                Obs.Obj
                  [
                    ("allocated_words", Obs.Float (alloc_bytes /. word));
                    ("top_heap_words", Obs.Int g.Gc.top_heap_words);
                  ]
              in
              let record =
                match Xqc.stats prepared with
                | Some c ->
                    Obs.Obj
                      (("query", Obs.Str qname)
                       :: ("strategy", Obs.Str (Xqc.strategy_name strategy))
                       :: ("result_items", Obs.Int (List.length result))
                       :: ("gc", gc_json)
                       ::
                       (match Obs.collector_to_json ~plans:false c with
                       | Obs.Obj fields -> fields
                       | other -> [ ("stats", other) ]))
                | None -> Obs.Obj [ ("query", Obs.Str qname) ]
              in
              output_string out (Obs.json_to_string record);
              output_char out '\n'
          | exception e ->
              output_string out
                (Obs.json_to_string
                   (Obs.Obj
                      [
                        ("query", Obs.Str qname);
                        ("strategy", Obs.Str (Xqc.strategy_name strategy));
                        ("error", Obs.Str (Printexc.to_string e));
                      ]));
              output_char out '\n')
        Xqc.all_strategies)
    Xqc_workload.Xmark_queries.all;
  flush out;
  close_out_fn ();
  match !metrics_json_file with
  | Some path -> Printf.eprintf "wrote metric records to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Early-termination microbenchmark                                    *)
(* ------------------------------------------------------------------ *)

(* Existential/positional queries where the streaming pipeline should
   stop after a bounded prefix, run streamed and fully materialized (the
   [~materialize] debug knob) on the same XMark document.  Pulled-tuple
   and pulled-item totals come from the obs collector; the CI smoke step
   asserts the streamed counts stay below a constant bound. *)
let early_exit () =
  let module Obs = Xqc_obs.Obs in
  let size = 1_000_000 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("exists-path", "fn:exists($auction/site/people/person)");
      ("exists-desc", "fn:exists($auction//item)");
      ("exists-late", "fn:exists($auction//person)");
      ("empty-desc", "fn:empty($auction//person)");
      ("first", "($auction//person)[1]");
      ("some-satisfies",
       "some $p in $auction//person satisfies fn:exists($p/homepage)");
      ("subsequence", "fn:subsequence($auction//person, 1, 5)");
    ]
  in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  Printf.eprintf
    "=== Early-exit microbenchmark: %dKB XMark document, streamed vs materialized ===\n"
    (size / 1000);
  Printf.eprintf "%-16s %-13s %10s %10s %10s %10s\n" "query" "mode" "time_ms"
    "tuples" "items" "result";
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun materialize ->
          let prepared = Xqc.prepare ~stats:true ~materialize q in
          let t0 = Unix.gettimeofday () in
          let result = Xqc.run prepared ctx in
          let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let tuples, items =
            match Xqc.stats prepared with
            | Some c -> Obs.pulled_totals c
            | None -> (0, 0)
          in
          let mode = if materialize then "materialized" else "streamed" in
          Printf.eprintf "%-16s %-13s %10.2f %10d %10d %10d\n" qname mode dt
            tuples items (List.length result);
          let record =
            Obs.Obj
              [
                ("query", Obs.Str qname);
                ("mode", Obs.Str mode);
                ("time_ms", Obs.Float dt);
                ("pulled_tuples", Obs.Int tuples);
                ("pulled_items", Obs.Int items);
                ("result_items", Obs.Int (List.length result));
              ]
          in
          output_string out (Obs.json_to_string record);
          output_char out '\n')
        [ false; true ])
    queries;
  flush out;
  close_out_fn ();
  match !metrics_json_file with
  | Some path -> Printf.eprintf "wrote early-exit records to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Structural-index microbenchmark                                     *)
(* ------------------------------------------------------------------ *)

(* The same axis queries with the structural indexes forced on and off,
   on a 1MB XMark document.  Per query and mode: the cold run (which in
   indexed mode pays the one-time index build) and the best of the warm
   runs.  count(//t) and exists(//t) resolve to index range bounds
   without touching a node, so their warm indexed times should sit
   orders of magnitude under the walk; the tentpole acceptance bar is
   5x.  A final record measures the fn:doc document cache: repeated runs
   of the same URI must hit the cache, not the parser. *)
let axis_index () =
  let module Obs = Xqc_obs.Obs in
  let size = 1_000_000 in
  let warm_runs = 5 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("count-desc", "count($auction//item)");
      ("count-late", "count($auction//closed_auction)");
      ("exists-late", "fn:exists($auction//closed_auction)");
      ("empty-missing", "fn:empty($auction//nosuchelement)");
      ("desc-iterate", "count($auction//item/name)");
      ("child-chain", "count($auction/site/regions/africa/item)");
      ("child-deep", "count($auction/site/people/person/profile/interest)");
    ]
  in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  let emit record =
    output_string out (Obs.json_to_string record);
    output_char out '\n'
  in
  Printf.eprintf
    "=== Axis-index microbenchmark: %dKB XMark document, indexed vs walk ===\n"
    (size / 1000);
  Printf.eprintf "%-16s %-8s %10s %10s %8s\n" "query" "mode" "cold_ms"
    "warm_ms" "result";
  let saved_mode = !Xqc.Store.mode in
  let time_one q =
    let prepared = Xqc.prepare q in
    let t0 = Unix.gettimeofday () in
    let result = Xqc.run prepared ctx in
    let cold = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let warm = ref infinity in
    for _ = 1 to warm_runs do
      let t0 = Unix.gettimeofday () in
      ignore (Xqc.run prepared ctx);
      warm := Float.min !warm ((Unix.gettimeofday () -. t0) *. 1000.0)
    done;
    (cold, !warm, Xqc.serialize result)
  in
  let results = Hashtbl.create 16 in
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun (mode_name, mode) ->
          Xqc.Store.mode := mode;
          Xqc.Store.clear ();
          let hits0 = List.assoc "index_hits" (Obs.global_counters ()) in
          let cold, warm, result = time_one q in
          let hits =
            List.assoc "index_hits" (Obs.global_counters ()) - hits0
          in
          Hashtbl.replace results (qname, mode_name) warm;
          Printf.eprintf "%-16s %-8s %10.3f %10.4f %8s\n" qname mode_name cold
            warm
            (if String.length result > 8 then String.sub result 0 8 else result);
          emit
            (Obs.Obj
               [
                 ("bench", Obs.Str "axis-index");
                 ("query", Obs.Str qname);
                 ("mode", Obs.Str mode_name);
                 ("cold_ms", Obs.Float cold);
                 ("warm_ms", Obs.Float warm);
                 ("index_hits", Obs.Int hits);
                 ("result", Obs.Str result);
               ]))
        [ ("indexed", Xqc.Store.Force); ("walk", Xqc.Store.Off) ])
    queries;
  Xqc.Store.mode := saved_mode;
  List.iter
    (fun (qname, _) ->
      let indexed = Hashtbl.find results (qname, "indexed") in
      let walk = Hashtbl.find results (qname, "walk") in
      Printf.eprintf "%-16s speedup %8.1fx\n" qname
        (walk /. Float.max indexed 0.0001))
    queries;
  (* fn:doc cache: one parse, then cache hits, across repeated runs *)
  let xml = Xqc_workload.Xmark.generate_string ~target_bytes:100_000 () in
  let parse_calls = ref 0 in
  let resolver uri =
    incr parse_calls;
    Xqc.parse_document ~uri xml
  in
  let dctx = Xqc.context ~resolver () in
  let p = Xqc.prepare {|count(doc("auction.xml")//item)|} in
  let hits0 = List.assoc "doc_cache_hits" (Obs.global_counters ()) in
  let parses0 = List.assoc "doc_parses" (Obs.global_counters ()) in
  let t0 = Unix.gettimeofday () in
  let runs = 10 in
  for _ = 1 to runs do
    ignore (Xqc.run p dctx)
  done;
  let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let hits = List.assoc "doc_cache_hits" (Obs.global_counters ()) - hits0 in
  let parses = List.assoc "doc_parses" (Obs.global_counters ()) - parses0 in
  Printf.eprintf
    "doc-cache: %d runs in %.2fms, %d parse(s), %d cache hit(s)\n" runs dt
    parses hits;
  emit
    (Obs.Obj
       [
         ("bench", Obs.Str "doc-cache");
         ("runs", Obs.Int runs);
         ("total_ms", Obs.Float dt);
         ("doc_parses", Obs.Int parses);
         ("doc_cache_hits", Obs.Int hits);
         ("resolver_calls", Obs.Int !parse_calls);
       ]);
  flush out;
  close_out_fn ();
  match !metrics_json_file with
  | Some path -> Printf.eprintf "wrote axis-index records to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fused execution tier benchmark                                      *)
(* ------------------------------------------------------------------ *)

(* Scan-, filter- and aggregate-heavy queries with the fused bytecode
   tier forced on and off, on a 1MB XMark document.  Per query and mode:
   the cold run and the best of the warm runs, plus the number of fused
   segments in the plan and the rows the bytecode loop pushed.  The
   tentpole acceptance bar is 5x on at least one scan/join-heavy query;
   Q1/Q8 are included end-to-end (constructors stay interpreted there,
   only their scan/probe pipelines fuse). *)
let fused_bench () =
  let module Obs = Xqc_obs.Obs in
  let size = 1_000_000 in
  let warm_runs = 5 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("scan-names", "$auction/site/regions/africa/item/name");
      ("scan-desc", "$auction/site/regions//item/name");
      ("deep-chain", "$auction/site/people/person/profile/interest");
      ( "deep-count",
        "count(for $i in $auction/site/people/person/profile/interest \
         return $i)" );
      ( "desc-count",
        "count(for $i in $auction/site/regions//item/name return $i)" );
      ( "filter-count",
        {|count(for $i in $auction/site/regions//item
               where $i/location = "United States" return $i)|} );
      ( "filter-collect",
        {|for $i in $auction/site/regions//item
          where $i/location = "United States" return $i/name|} );
      ( "sum-price",
        {|sum(for $c in $auction/site/closed_auctions/closed_auction
             return $c/price)|} );
      ("Q1", Xqc_workload.Xmark_queries.q1);
      ("Q8", Xqc_workload.Xmark_queries.q8);
    ]
  in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  let emit record =
    output_string out (Obs.json_to_string record);
    output_char out '\n'
  in
  Printf.eprintf
    "=== Fused-tier microbenchmark: %dKB XMark document, fused vs interpreted ===\n"
    (size / 1000);
  Printf.eprintf "%-14s %-12s %10s %10s %9s %6s %10s\n" "query" "mode"
    "cold_ms" "warm_ms" "segments" "rows" "result";
  let saved_mode = !Xqc.Codegen.mode in
  let results = Hashtbl.create 16 in
  List.iter
    (fun (qname, q) ->
      let prepared = Xqc.prepare q in
      (* annotate consults the mode: force it so the column reflects what
         the fused runs below actually execute *)
      let segments =
        Xqc.Codegen.mode := Xqc.Codegen.Force;
        match Xqc.physical_plan prepared with
        | None -> 0
        | Some pq -> List.length (Xqc.Codegen.annotate pq.Xqc.Physical.pmain)
      in
      List.iter
        (fun (mode_name, mode) ->
          Xqc.Codegen.mode := mode;
          let rows0 = List.assoc "fused_rows" (Obs.global_counters ()) in
          let t0 = Unix.gettimeofday () in
          let result = Xqc.run prepared ctx in
          let cold = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let rows = List.assoc "fused_rows" (Obs.global_counters ()) - rows0 in
          let warm = ref infinity in
          for _ = 1 to warm_runs do
            let t0 = Unix.gettimeofday () in
            ignore (Xqc.run prepared ctx);
            warm := Float.min !warm ((Unix.gettimeofday () -. t0) *. 1000.0)
          done;
          let rendered = Xqc.serialize result in
          Hashtbl.replace results (qname, mode_name) !warm;
          Printf.eprintf "%-14s %-12s %10.3f %10.4f %9d %6d %10s\n" qname
            mode_name cold !warm
            (if mode = Xqc.Codegen.Off then 0 else segments)
            rows
            (if String.length rendered > 10 then String.sub rendered 0 10
             else rendered);
          emit
            (Obs.Obj
               [
                 ("bench", Obs.Str "fused");
                 ("query", Obs.Str qname);
                 ("mode", Obs.Str mode_name);
                 ("cold_ms", Obs.Float cold);
                 ("warm_ms", Obs.Float !warm);
                 ("fused_segments", Obs.Int (if mode = Xqc.Codegen.Off then 0 else segments));
                 ("fused_rows", Obs.Int rows);
                 ("result_items", Obs.Int (List.length result));
               ]))
        [ ("fused", Xqc.Codegen.Force); ("interpreted", Xqc.Codegen.Off) ])
    queries;
  Xqc.Codegen.mode := saved_mode;
  List.iter
    (fun (qname, _) ->
      let fused = Hashtbl.find results (qname, "fused") in
      let interp = Hashtbl.find results (qname, "interpreted") in
      let speedup = interp /. Float.max fused 0.0001 in
      Printf.eprintf "%-14s speedup %8.1fx\n" qname speedup;
      emit
        (Obs.Obj
           [
             ("bench", Obs.Str "fused-speedup");
             ("query", Obs.Str qname);
             ("speedup", Obs.Float speedup);
           ]))
    queries;
  flush out;
  close_out_fn ();
  match !metrics_json_file with
  | Some path -> Printf.eprintf "wrote fused-tier records to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Relational-offload benchmark                                        *)
(* ------------------------------------------------------------------ *)

(* Join/group-by/order-by workloads under the three backend modes.  The
   backend is a planning-time choice, so each mode gets its own prepare;
   every mode's serialized result is checked byte-identical against the
   native run. *)
let offload_bench () =
  let module Obs = Xqc_obs.Obs in
  let module Rel = Xqc.Rel_algebra in
  let size = 1_000_000 in
  let warm_runs = 5 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("Q8", Xqc_workload.Xmark_queries.q8);
      ("Q9", Xqc_workload.Xmark_queries.q9);
      ( "group-count",
        {|for $p in $auction/site/people/person
          let $w := for $o in $auction/site/open_auctions/open_auction
                    where $o/bidder/personref/@person = $p/@id
                    return $o
          return <bids person="{$p/@id}">{count($w)}</bids>|} );
      ( "order-names",
        {|for $p in $auction/site/people/person
          order by $p/name descending empty least
          return $p/name/text()|} );
    ]
  in
  let counter name =
    match List.assoc_opt name (Obs.global_counters ()) with
    | Some n -> n
    | None -> 0
  in
  Printf.eprintf
    "=== Relational-offload microbenchmark: %dKB XMark document ===\n"
    (size / 1000);
  Printf.eprintf "%-12s %-8s %10s %10s %9s %10s %6s %6s\n" "query" "mode"
    "cold_ms" "warm_ms" "subplans" "rel_rows" "fallbk" "match";
  let saved_backend = !Rel.backend in
  let records = ref [] in
  let warm_times = Hashtbl.create 16 in
  let modes = [ ("native", Rel.Native); ("rel", Rel.Rel); ("auto", Rel.Auto) ] in
  (* Plan every (query, mode) pair before any execution: the auto gate
     consults index statistics, which only exist after a run, so
     planning up front reproduces what a fresh process (the CLI) sees. *)
  let plans =
    List.map
      (fun (qname, q) ->
        let per_mode =
          List.map
            (fun (mode_name, mode) ->
              Rel.backend := mode;
              let prepared = Xqc.prepare q in
              let static_subplans =
                match Xqc.physical_plan prepared with
                | None -> 0
                | Some pq ->
                    Xqc.Physical.fold
                      (fun acc (n : Xqc.Physical.t) ->
                        match n.Xqc.Physical.pop with
                        | Xqc.Physical.PRelational _ -> acc + 1
                        | _ -> acc)
                      0 pq.Xqc.Physical.pmain
              in
              (mode_name, prepared, static_subplans))
            modes
        in
        (qname, per_mode))
      queries
  in
  Rel.backend := saved_backend;
  List.iter
    (fun (qname, per_mode) ->
      let reference = ref "" in
      List.iter
        (fun (mode_name, prepared, static_subplans) ->
          let sub0 = counter "rel_subplans" in
          let rows0 = counter "rel_rows" in
          let fb0 = counter "rel_fallbacks" in
          let t0 = Unix.gettimeofday () in
          let result = Xqc.run prepared ctx in
          let cold = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let subplans = counter "rel_subplans" - sub0 in
          let rel_rows = counter "rel_rows" - rows0 in
          let fallbacks = counter "rel_fallbacks" - fb0 in
          let warm = ref infinity in
          for _ = 1 to warm_runs do
            let t0 = Unix.gettimeofday () in
            ignore (Xqc.run prepared ctx);
            warm := Float.min !warm ((Unix.gettimeofday () -. t0) *. 1000.0)
          done;
          let rendered = Xqc.serialize result in
          if mode_name = "native" then reference := rendered;
          let identical = rendered = !reference in
          if not identical then
            Printf.eprintf "MISMATCH: %s under %s diverges from native\n" qname
              mode_name;
          Hashtbl.replace warm_times (qname, mode_name) !warm;
          Printf.eprintf "%-12s %-8s %10.3f %10.4f %9d %10d %6d %6s\n" qname
            mode_name cold !warm static_subplans rel_rows fallbacks
            (if identical then "ok" else "DIFF");
          records :=
            Obs.Obj
              [
                ("query", Obs.Str qname);
                ("mode", Obs.Str mode_name);
                ("cold_ms", Obs.Float cold);
                ("warm_ms", Obs.Float !warm);
                ("rel_subplans_static", Obs.Int static_subplans);
                ("rel_subplans_run", Obs.Int subplans);
                ("rel_rows", Obs.Int rel_rows);
                ("rel_fallbacks", Obs.Int fallbacks);
                ("identical_to_native", Obs.Bool identical);
                ("result_items", Obs.Int (List.length result));
              ]
            :: !records)
        per_mode)
    plans;
  List.iter
    (fun (qname, _) ->
      let native = Hashtbl.find warm_times (qname, "native") in
      let rel = Hashtbl.find warm_times (qname, "rel") in
      Printf.eprintf "%-12s rel vs native %8.2fx\n" qname
        (native /. Float.max rel 0.0001))
    queries;
  let record =
    Obs.Obj
      [
        ("bench", Obs.Str "offload");
        ("doc_bytes", Obs.Int size);
        ("runs", Obs.Arr (List.rev !records));
      ]
  in
  let path = Option.value !metrics_json_file ~default:"bench/BENCH_offload.json" in
  try
    let oc = open_out_bin path in
    output_string oc (Obs.json_to_string record);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "wrote %s\n%!" path
  with Sys_error m -> Printf.eprintf "could not write %s: %s\n%!" path m

(* ------------------------------------------------------------------ *)
(* Planner benchmark                                                   *)
(* ------------------------------------------------------------------ *)

(* The cost-based physical planner against each forced join algorithm on
   the join-heavy workload queries.  Per query: the operators the planner
   actually planned (from the physical plan), then warm wall time under
   the planner's choice and under each forced algorithm — the planner
   column should track the best forced column. *)
let planner_bench () =
  let module Obs = Xqc_obs.Obs in
  let size = 1_000_000 in
  let warm_runs = 3 in
  let doc = Xqc_workload.Xmark.generate ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("Q8", Xqc_workload.Xmark_queries.q8);
      ("Q9", Xqc_workload.Xmark_queries.q9);
      ("Q12", Xqc_workload.Xmark_queries.q12);
    ]
  in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  let emit record =
    output_string out (Obs.json_to_string record);
    output_char out '\n'
  in
  let joins_of prepared =
    match Xqc.physical_plan prepared with
    | None -> "-"
    | Some pq ->
        let count pred =
          Xqc.Physical.fold
            (fun n t -> if pred t.Xqc.Physical.pop then n + 1 else n)
            0 pq.Xqc.Physical.pmain
        in
        let h = count (function Xqc.Physical.PHashJoin _ -> true | _ -> false)
        and s = count (function Xqc.Physical.PSortJoin _ -> true | _ -> false)
        and n =
          count (function Xqc.Physical.PNestedLoop _ -> true | _ -> false)
        in
        Printf.sprintf "hash=%d sort=%d nl=%d" h s n
  in
  let time prepared =
    ignore (Xqc.run prepared ctx);
    let warm = ref infinity in
    for _ = 1 to warm_runs do
      let t0 = Unix.gettimeofday () in
      ignore (Xqc.run prepared ctx);
      warm := Float.min !warm ((Unix.gettimeofday () -. t0) *. 1000.0)
    done;
    !warm
  in
  Printf.eprintf
    "=== Planner benchmark: %dKB XMark, cost-based vs forced joins ===\n"
    (size / 1000);
  Printf.eprintf "%-6s %-22s %10s %10s %10s %10s\n" "query" "planner choice"
    "planned" "force-nl" "force-hash" "force-sort";
  List.iter
    (fun (qname, q) ->
      let planned = Xqc.prepare q in
      let choice = joins_of planned in
      let t_planned = time planned in
      let forced alg = time (Xqc.prepare ~force_join:alg q) in
      let t_nl = forced Xqc.Physical.Nested_loop in
      let t_hash = forced Xqc.Physical.Hash in
      let t_sort = forced Xqc.Physical.Sort in
      Printf.eprintf "%-6s %-22s %9.2fms %9.2fms %9.2fms %9.2fms\n" qname
        choice t_planned t_nl t_hash t_sort;
      emit
        (Obs.Obj
           [
             ("bench", Obs.Str "planner");
             ("query", Obs.Str qname);
             ("planner_choice", Obs.Str choice);
             ("planned_ms", Obs.Float t_planned);
             ("forced_nl_ms", Obs.Float t_nl);
             ("forced_hash_ms", Obs.Float t_hash);
             ("forced_sort_ms", Obs.Float t_sort);
           ]))
    queries;
  flush out;
  close_out_fn ();
  match !metrics_json_file with
  | Some path -> Printf.eprintf "wrote planner records to %s\n" path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the join kernels                        *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let make_tables n =
    let mk i =
      [| [ Xqc.Item.Atom (Xqc.Atomic.Untyped (string_of_int (i mod (n / 2 + 1)))) ] |]
    in
    (List.init n mk, List.init n mk)
  in
  let key (t : Xqc.Item.sequence array) = t.(0) in
  let nl_join (left, right) () =
    List.iter
      (fun l ->
        List.iter
          (fun r ->
            ignore
              (Xqc.Promotion.general_compare Xqc.Promotion.Eq (key l) (key r)))
          right)
      left
  in
  let hash_join (left, right) () =
    let ix = Xqc.Joins.build_hash_index right key in
    List.iter
      (fun l -> ignore (Xqc.Joins.probe_hash_index ix (Xqc.Item.atomize (key l))))
      left
  in
  let test_of name f =
    Test.make_indexed ~name ~args:[ 100; 400; 1600 ] (fun n ->
        Staged.stage (f (make_tables n)))
  in
  let tests =
    Test.make_grouped ~name:"join-kernels"
      [ test_of "nested-loop" nl_join; test_of "xquery-hash" hash_join ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Microbenchmark: join kernels (bechamel) ===\n\n";
  let rows = Hashtbl.fold (fun name m acc -> (name, m) :: acc) results [] in
  List.iter
    (fun (name, m) ->
      match Analyze.OLS.estimates m with
      | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
      | Some _ | None -> ())
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Intra-query parallelism scaling                                     *)
(* ------------------------------------------------------------------ *)

(* Scan-, join- and aggregate-shaped queries on a ~1MB XMark document at
   domain budgets 1, 2 and 4.  Per (query, degree): best warm time, the
   speedup against degree 1, and the par_tasks counter delta (how many
   partition tasks actually ran — 0 means the planner or the width gate
   kept the query sequential).  Every degree's serialized result is
   asserted byte-equal to the sequential reference before the record is
   written, so the snapshot doubles as a correctness check.

   Note: speedups are hardware-dependent — on a single-core container
   (Domain.recommended_domain_count () = 1) the partitioned runs still
   execute (the budget is forced), but all partitions share one core, so
   expect ~1.0x and read the par_tasks column instead. *)
let scale_bench () =
  let module Obs = Xqc_obs.Obs in
  (* 2MB, not 1MB: with the structural index built, the planner's
     par_threshold (1000 estimated rows) honestly keeps the 1MB join
     inputs (~600 persons + ~230 closed auctions) sequential; at 2MB
     the scan, join and aggregate inputs all clear the gate. *)
  let size = 2_000_000 in
  let warm_runs = 5 in
  let degrees = [ 1; 2; 4 ] in
  let doc = Xqc_workload.Xmark.generate ~seed:42 ~target_bytes:size () in
  let ctx = make_xmark_ctx doc in
  let queries =
    [
      ("scan-names", "$auction/site/regions//item/name");
      ("scan-count", "count($auction/site/regions//item/name)");
      ( "filter-scan",
        {|for $i in $auction/site/regions//item
          where $i/location = "United States" return $i/name|} );
      ( "agg-sum",
        {|sum(for $c in $auction/site/closed_auctions/closed_auction
             return $c/price)|} );
      ("join-Q8", Xqc_workload.Xmark_queries.q8);
      ("join-Q9", Xqc_workload.Xmark_queries.q9);
    ]
  in
  let out, close_out_fn =
    match !metrics_json_file with
    | None -> (stdout, fun () -> ())
    | Some path ->
        let oc = open_out_bin path in
        (oc, fun () -> close_out oc)
  in
  Printf.eprintf
    "=== Parallel scaling: %dKB XMark document, domain budget 1/2/4 ===\n"
    (size / 1000);
  Printf.eprintf "(host reports %d core(s))\n"
    (Domain.recommended_domain_count ());
  Printf.eprintf "%-12s %6s %10s %10s %9s %8s\n" "query" "degree" "cold_ms"
    "warm_ms" "speedup" "tasks";
  let counter name = List.assoc name (Obs.global_counters ()) in
  let records =
    List.concat_map
      (fun (qname, q) ->
        let reference = ref "" in
        let base_warm = ref 0.0 in
        List.map
          (fun degree ->
            (* budget before prepare: the planner reads the query degree
               when it annotates the plan *)
            Xqc.Domain_pool.set_budget (Some degree);
            let prepared = Xqc.prepare q in
            let tasks0 = counter "par_tasks" in
            let t0 = Unix.gettimeofday () in
            let result = Xqc.run prepared ctx in
            let cold = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let warm = ref infinity in
            for _ = 1 to warm_runs do
              let t0 = Unix.gettimeofday () in
              ignore (Xqc.run prepared ctx);
              warm := Float.min !warm ((Unix.gettimeofday () -. t0) *. 1000.0)
            done;
            let tasks = counter "par_tasks" - tasks0 in
            let rendered = Xqc.serialize result in
            if degree = 1 then (
              reference := rendered;
              base_warm := !warm)
            else if rendered <> !reference then (
              Printf.eprintf
                "FAIL: %s at degree %d disagrees with the sequential result\n"
                qname degree;
              Stdlib.exit 1);
            let speedup = !base_warm /. Float.max !warm 0.0001 in
            Printf.eprintf "%-12s %6d %10.3f %10.4f %8.2fx %8d\n" qname degree
              cold !warm speedup tasks;
            Obs.Obj
              [
                ("bench", Obs.Str "scale");
                ("query", Obs.Str qname);
                ("degree", Obs.Int degree);
                ("cold_ms", Obs.Float cold);
                ("warm_ms", Obs.Float !warm);
                ("speedup", Obs.Float speedup);
                ("par_tasks", Obs.Int tasks);
                ("result_items", Obs.Int (List.length result));
              ])
          degrees)
      queries
  in
  Xqc.Domain_pool.set_budget None;
  let record =
    Obs.Obj
      [
        ("bench", Obs.Str "scale");
        ("doc_bytes", Obs.Int size);
        ("degrees", Obs.Arr (List.map (fun d -> Obs.Int d) degrees));
        ("recommended_domains", Obs.Int (Domain.recommended_domain_count ()));
        ("runs", Obs.Arr records);
      ]
  in
  let path =
    match !metrics_json_file with
    | Some _ -> None (* per-run records already streamed to --json=FILE *)
    | None -> Some "bench/BENCH_scale.json"
  in
  (match path with
  | Some p -> (
      try
        let oc = open_out_bin p in
        output_string oc (Obs.json_to_string record);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "wrote %s\n%!" p
      with Sys_error m -> Printf.eprintf "could not write %s: %s\n%!" p m)
  | None ->
      output_string out (Obs.json_to_string record);
      output_char out '\n');
  flush out;
  close_out_fn ()

(* ------------------------------------------------------------------ *)
(* Query-service throughput and latency                                *)
(* ------------------------------------------------------------------ *)

(* The server end to end over a Unix socket: an in-process service
   preloading a 1MB XMark document, hammered by 4 client threads for a
   fixed window at 1, 2 and 4 worker domains (plus a 1-worker run with
   tracing sampled out, to price the tracing plane).  Reports QPS,
   client-observed p50/p95/p99 latency, and the server-side breakdown —
   mean queue wait / eval / serialize and total lock wait — per
   configuration, scraped from the metrics verb before shutdown; the
   JSON record goes to --json=FILE or bench/BENCH_server.json.

   Note: throughput scaling with workers is hardware-dependent — on a
   single-core container the configurations collapse to the same QPS
   and only the admission/queueing behavior differs. *)
let serve_bench () =
  let module Obs = Xqc_obs.Obs in
  let module Trace = Xqc_obs.Trace in
  let module Server = Xqc_server.Server in
  let module Client = Xqc_server.Client in
  let size = 1_000_000 in
  let n_clients = 4 in
  let duration = 3.0 in
  let doc_path = Filename.temp_file "xqc-bench-doc" ".xml" in
  let oc = open_out_bin doc_path in
  output_string oc (Xqc_workload.Xmark.generate_string ~seed:42 ~target_bytes:size ());
  close_out oc;
  let queries =
    [|
      "count($auction//item)";
      "count($auction//person)";
      "count(for $i in $auction//item where $i/location = \"United States\" \
       return $i)";
      "for $p in $auction/site/people/person where $p/@id = \"person0\" \
       return $p/name/text()";
    |]
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (Float.round (p /. 100. *. float_of_int n +. 0.5)) - 1 in
      sorted.(max 0 (min (n - 1) rank))
  in
  Printf.eprintf
    "=== Query service: %d client threads, %.0fs per config, %dKB XMark doc ===\n%!"
    n_clients duration (size / 1000);
  Printf.printf "%-10s %-6s %9s %9s %9s %9s %9s %9s %9s %9s\n" "workers"
    "trace" "requests" "qps" "p50 ms" "p95 ms" "p99 ms" "qwait ms" "eval ms"
    "lockw ms";
  let json_field name = function
    | Obs.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let json_num ?(default = 0.0) name json =
    match json_field name json with
    | Some (Obs.Float f) -> f
    | Some (Obs.Int n) -> float_of_int n
    | _ -> default
  in
  let records =
    List.map
      (fun (workers, trace_sample) ->
        (* Lock stats and trace rings are process-global and interned by
           name: reset between configs so each scrape attributes wait
           time to its own configuration only. *)
        Obs.reset_lock_stats ();
        Trace.reset ();
        let sock = Filename.temp_file "xqc-bench" ".sock" in
        let ready_lock = Mutex.create () in
        let ready_cond = Condition.create () in
        let is_ready = ref false in
        let cfg =
          {
            Server.default_config with
            unix_socket = Some sock;
            workers;
            queue_depth = 256;
            preload = [ ("auction", doc_path) ];
            trace_sample;
            slow_ms = 250.0;
          }
        in
        let server_thread =
          Thread.create
            (fun () ->
              Server.serve
                ~ready:(fun () ->
                  Mutex.protect ready_lock (fun () ->
                      is_ready := true;
                      Condition.signal ready_cond))
                cfg)
            ()
        in
        Mutex.lock ready_lock;
        while not !is_ready do
          Condition.wait ready_cond ready_lock
        done;
        Mutex.unlock ready_lock;
        let latencies = Array.make n_clients [] in
        let t_start = Obs.now () in
        let t_end = t_start +. duration in
        let client_loop k () =
          let c = Client.connect_unix sock in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let acc = ref [] in
          let i = ref k in
          while Obs.now () < t_end do
            let q = queries.(!i mod Array.length queries) in
            incr i;
            let t0 = Obs.now () in
            (match Client.query c q with
            | Ok _ -> acc := ((Obs.now () -. t0) *. 1000.) :: !acc
            | Error (code, m) -> Printf.eprintf "request failed: %s: %s\n%!" code m)
          done;
          latencies.(k) <- !acc
        in
        let clients = List.init n_clients (fun k -> Thread.create (client_loop k) ()) in
        List.iter Thread.join clients;
        let elapsed = Obs.now () -. t_start in
        (* Scrape the server-side breakdown before shutting down: where
           did the wall time go — queued, evaluating, serializing, or
           blocked on a lock? *)
        let metrics =
          let c = Client.connect_unix sock in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let m = Client.metrics c in
          Client.shutdown c;
          m
        in
        Thread.join server_thread;
        let hist_mean name =
          match json_field name metrics with
          | Some h -> json_num "mean" h
          | None -> 0.0
        in
        let qwait_mean = hist_mean "queue_wait_ms" in
        let eval_mean = hist_mean "eval_ms" in
        let ser_mean = hist_mean "serialize_ms" in
        let locks =
          match json_field "locks" metrics with
          | Some (Obs.Arr l) -> l
          | _ -> []
        in
        let lock_wait_total =
          List.fold_left (fun acc lk -> acc +. json_num "wait_ms" lk) 0.0 locks
        in
        let worker_util =
          match json_field "workers_detail" metrics with
          | Some (Obs.Arr ws) ->
              Obs.Arr
                (List.map (fun w -> Obs.Float (json_num "utilization" w)) ws)
          | _ -> Obs.Arr []
        in
        let all = Array.of_list (List.concat (Array.to_list latencies)) in
        Array.sort compare all;
        let n = Array.length all in
        let qps = float_of_int n /. elapsed in
        let p50 = percentile all 50. in
        let p95 = percentile all 95. in
        let p99 = percentile all 99. in
        Printf.printf
          "%-10d %-6s %9d %9.1f %9.3f %9.3f %9.3f %9.3f %9.3f %9.1f\n%!"
          workers
          (if trace_sample > 0.0 then "on" else "off")
          n qps p50 p95 p99 qwait_mean eval_mean lock_wait_total;
        Obs.Obj
          [
            ("workers", Obs.Int workers);
            ("trace_sample", Obs.Float trace_sample);
            ("requests", Obs.Int n);
            ("qps", Obs.Float qps);
            ("p50_ms", Obs.Float p50);
            ("p95_ms", Obs.Float p95);
            ("p99_ms", Obs.Float p99);
            ("queue_wait_mean_ms", Obs.Float qwait_mean);
            ("eval_mean_ms", Obs.Float eval_mean);
            ("serialize_mean_ms", Obs.Float ser_mean);
            ("lock_wait_total_ms", Obs.Float lock_wait_total);
            ("worker_utilization", worker_util);
            ("locks", Obs.Arr locks);
          ])
      [ (1, 0.0); (1, 1.0); (2, 1.0); (4, 1.0) ]
  in
  (try Sys.remove doc_path with Sys_error _ -> ());
  (* Tracing overhead: QPS delta between the two 1-worker runs (sampled
     out vs every request traced). *)
  let qps_of pred =
    List.find_map
      (fun r ->
        match r with
        | Obs.Obj fields
          when pred
                 ( json_num "workers" r |> int_of_float,
                   json_num "trace_sample" r ) ->
            Some (json_num "qps" (Obs.Obj fields))
        | _ -> None)
      records
  in
  let trace_overhead_pct =
    match
      ( qps_of (fun (w, ts) -> w = 1 && ts = 0.0),
        qps_of (fun (w, ts) -> w = 1 && ts > 0.0) )
    with
    | Some off, Some on when off > 0.0 -> (off -. on) /. off *. 100.0
    | _ -> 0.0
  in
  Printf.eprintf "tracing overhead at 1 worker: %.2f%% QPS\n%!"
    trace_overhead_pct;
  let record =
    Obs.Obj
      [
        ("bench", Obs.Str "serve");
        ("doc_bytes", Obs.Int size);
        ("clients", Obs.Int n_clients);
        ("duration_s", Obs.Float duration);
        ("recommended_domains", Obs.Int (Domain.recommended_domain_count ()));
        ("trace_overhead_pct", Obs.Float trace_overhead_pct);
        ("configs", Obs.Arr records);
      ]
  in
  let path = Option.value !metrics_json_file ~default:"bench/BENCH_server.json" in
  (try
     let oc = open_out_bin path in
     output_string oc (Obs.json_to_string record);
     output_char oc '\n';
     close_out oc;
     Printf.eprintf "wrote %s\n%!" path
   with Sys_error m -> Printf.eprintf "could not write %s: %s\n%!" path m)

(* ------------------------------------------------------------------ *)
(* Update microbenchmark                                               *)
(* ------------------------------------------------------------------ *)

(* Small updates against a ~1MB XMark document: the incremental path
   (one live gap-numbered tree whose structural indexes are patched in
   place) against the reparse-on-write baseline (serialize + reparse +
   reindex after every write — what keeping the indexes fresh costs
   without incremental maintenance).  Both paths answer the same
   index-backed probe after every write and must agree; the gapped
   numbering is expected to absorb every one of these small updates
   without a single full renumber. *)
let update_bench () =
  let module Obs = Xqc_obs.Obs in
  let size = 1_000_000 in
  let n_updates = 40 in
  let xml = Xqc_workload.Xmark.generate_string ~target_bytes:size () in
  let probe = "count($auction//item)" in
  let regions =
    [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]
  in
  let scripts =
    List.init n_updates (fun i ->
        match i mod 3 with
        | 0 ->
            (* Spread appends across parents: a fresh parent's tail slack
               absorbs a small subtree, but piling appends onto one parent
               would exhaust it and force full renumbers. *)
            let j = i / 3 in
            if j < Array.length regions then
              Printf.sprintf
                "insert node <item id=\"bench-%d\"><name>b%d</name></item> \
                 as last into $auction/site/regions/%s"
                i i regions.(j)
            else
              Printf.sprintf
                "insert node <incategory category=\"bench%d\"/> as last \
                 into ($auction//item)[%d]"
                i (30 + j)
        | 1 ->
            Printf.sprintf
              "replace value of node (($auction//person)[%d]/name)[1] with \
               \"r%d\""
              ((i mod 20) + 1)
              i
        | _ ->
            Printf.sprintf
              "insert node <note>touch%d</note> into \
               ($auction//open_auction)[%d]"
              i
              ((i mod 20) + 1))
  in
  let counter name =
    match List.assoc_opt name (Obs.global_counters ()) with
    | Some v -> v
    | None -> 0
  in
  let make_ctx root =
    let ctx = Xqc.context () in
    Xqc.bind_document ctx "auction.xml" root;
    Xqc.bind_variable ctx "auction" [ Xqc.Item.Node root ];
    ctx
  in
  let compiled = List.map (fun s -> Xqc.Update.compile s) scripts in
  let probe_p = Xqc.prepare ~strategy:Xqc.Saxon_like probe in
  (* incremental: one live tree, indexes patched per write *)
  let renumbers0 = counter "full_renumbers" in
  let patches0 = counter "incremental_index_patches" in
  let root = Xqc.parse_document ~uri:"auction.xml" xml in
  Xqc.Node.renumber_gapped root;
  ignore (Xqc.Store.index_nodes root);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun c ->
      ignore (Xqc.Update.apply_to_root c ~make_ctx root);
      ignore (Xqc.run probe_p (make_ctx root)))
    compiled;
  let incr_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let renumbers = counter "full_renumbers" - renumbers0 in
  let patches = counter "incremental_index_patches" - patches0 in
  let incr_answer = Xqc.serialize (Xqc.run probe_p (make_ctx root)) in
  let incr_bytes = Xqc.serialize [ Xqc.Item.Node root ] in
  (* baseline: reparse and reindex the whole document on every write *)
  let bytes = ref xml in
  let last_answer = ref "" in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun c ->
      let r = Xqc.parse_document ~uri:"auction.xml" !bytes in
      Xqc.Node.renumber_gapped r;
      ignore (Xqc.Store.index_nodes r);
      ignore (Xqc.Update.apply_to_root c ~make_ctx r);
      bytes := Xqc.serialize [ Xqc.Item.Node r ];
      last_answer := Xqc.serialize (Xqc.run probe_p (make_ctx r));
      Xqc.Store.purge_root r)
    compiled;
  let reparse_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let agree = String.equal incr_answer !last_answer in
  let bytes_agree = String.equal incr_bytes !bytes in
  let speedup = reparse_ms /. Float.max incr_ms 0.001 in
  Printf.eprintf
    "=== Update microbenchmark: %d small updates on a %dKB XMark document ===\n"
    n_updates (size / 1000);
  Printf.eprintf "incremental        %10.1fms  (%d index patches, %d full renumbers)\n"
    incr_ms patches renumbers;
  Printf.eprintf "reparse-on-write   %10.1fms\n" reparse_ms;
  Printf.eprintf "speedup            %10.1fx  (answers agree: %b, bytes agree: %b)\n"
    speedup agree bytes_agree;
  let record =
    Obs.Obj
      [
        ("bench", Obs.Str "update");
        ("doc_bytes", Obs.Int size);
        ("updates", Obs.Int n_updates);
        ("incremental_ms", Obs.Float incr_ms);
        ("reparse_ms", Obs.Float reparse_ms);
        ("speedup", Obs.Float speedup);
        ("full_renumbers", Obs.Int renumbers);
        ("incremental_index_patches", Obs.Int patches);
        ("probe", Obs.Str probe);
        ("final_answer", Obs.Str incr_answer);
        ("answers_agree", Obs.Bool agree);
        ("bytes_agree", Obs.Bool bytes_agree);
      ]
  in
  let path = Option.value !metrics_json_file ~default:"bench/BENCH_update.json" in
  (try
     let oc = open_out_bin path in
     output_string oc (Obs.json_to_string record);
     output_char oc '\n';
     close_out oc;
     Printf.eprintf "wrote %s\n%!" path
   with Sys_error m -> Printf.eprintf "could not write %s: %s\n%!" path m);
  if not (agree && bytes_agree) then (
    Printf.eprintf "FAIL: incremental and reparse-on-write paths diverged\n";
    Stdlib.exit 1)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let flags, cmds = List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--") (List.tl args) in
  if List.mem "--paper" flags then (
    paper_scale := true;
    cell_timeout := 7200.0);
  List.iter
    (fun f ->
      let with_prefix prefix k =
        let n = String.length prefix in
        if String.length f > n && String.sub f 0 n = prefix then
          k (String.sub f n (String.length f - n))
      in
      with_prefix "--timeout=" (fun v -> cell_timeout := float_of_string v);
      with_prefix "--json=" (fun v -> metrics_json_file := Some v))
    flags;
  let run = function
    | "table3" -> table3 ()
    | "table4" -> table4 ()
    | "table5" -> table5 ()
    | "figure4" -> figure4 ()
    | "saxon" -> saxon ()
    | "ablation" -> ablation ()
    | "metrics" -> metrics ()
    | "early-exit" -> early_exit ()
    | "axis-index" -> axis_index ()
    | "fused" -> fused_bench ()
    | "planner" -> planner_bench ()
    | "micro" -> micro ()
    | "scale" -> scale_bench ()
    | "offload" -> offload_bench ()
    | "update" -> update_bench ()
    | "serve" -> serve_bench ()
    | "all" ->
        figure4 ();
        table3 ();
        table4 ();
        table5 ();
        saxon ();
        ablation ()
    | other ->
        Printf.eprintf
          "unknown benchmark %S (expected table3|table4|table5|figure4|saxon|ablation|metrics|early-exit|axis-index|fused|planner|micro|scale|offload|update|serve|all)\n"
          other;
        Stdlib.exit 1
  in
  match cmds with [] -> run "all" | cmds -> List.iter run cmds
