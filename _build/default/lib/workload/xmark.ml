(* A synthetic XMark auction-site document generator.

   The element structure follows the XMark benchmark schema (site /
   regions / categories / catgraph / people / open_auctions /
   closed_auctions) closely enough that the twenty benchmark queries
   exercise the same paths, joins and cardinalities as the original
   xmlgen documents.  Entity counts scale linearly with the requested
   byte budget; cross-references (buyer/seller person ids, item refs,
   category refs) are drawn uniformly, giving the same join fan-outs the
   paper's experiments rely on (e.g. ~0.4 closed auctions per person for
   Q8).  Generation is deterministic for a given seed. *)

open Xqc_xml

let words =
  [|
    "officer"; "embrace"; "such"; "fears"; "gold"; "brave"; "dispatch";
    "shortly"; "against"; "sovereign"; "mutual"; "presence"; "river";
    "convey"; "mortal"; "ponder"; "wonder"; "special"; "sense"; "shame";
    "length"; "wealth"; "figure"; "sleeps"; "guest"; "hither"; "mingle";
    "blood"; "breath"; "crown"; "virtue"; "gentle"; "riches"; "humble";
    "proceed"; "duties"; "serpent"; "tongue"; "plague"; "spirits";
    "malice"; "bosom"; "throne"; "feast"; "noble"; "sword"; "honest";
    "slender"; "patience"; "purse"; "scorn"; "garden"; "desire";
    "fortune"; "mistress"; "promise"; "wisdom"; "shadow"; "danger";
    "silver"; "market"; "justice"; "labour"; "command"; "kingdom";
    "counsel"; "service"; "messenger"; "welcome"; "quarrel"; "fashion";
  |]

let first_names =
  [|
    "Jaak"; "Mehrdad"; "Sinisa"; "Aloys"; "Moshe"; "Ewing"; "Benedikte";
    "Kawon"; "Dariusz"; "Jovan"; "Malous"; "Torben"; "Shooichi"; "Hercules";
    "Amarnath"; "Reinhard"; "Takahira"; "Wolfgang"; "Umesh"; "Remzi";
    "Dominique"; "Virgile"; "Griselda"; "Ileana"; "Margit"; "Federica";
  |]

let last_names =
  [|
    "Merk"; "Takano"; "Vance"; "Dittrich"; "Gyorkos"; "Huij"; "Braunmuller";
    "Siek"; "Emde"; "Sevcikova"; "Vivier"; "Oerlemans"; "Kuehne"; "Litecky";
    "Srikanth"; "Wijshoff"; "Cesarini"; "Pfeifer"; "Maurer"; "Tsukuda";
  |]

let countries =
  [| "United States"; "Germany"; "France"; "Japan"; "Netherlands"; "Canada" |]

let cities =
  [| "Abilene"; "Tampa"; "Dresden"; "Lyon"; "Osaka"; "Utrecht"; "Windsor"; "Omaha" |]

type counts = {
  n_categories : int;
  n_items : (string * int) list;  (** per region *)
  n_persons : int;
  n_open : int;
  n_closed : int;
}

(* Entity counts for a byte budget; the per-100MB baseline follows the
   XMark scaling tables.  The fudge factor was calibrated against the
   serialized output of this generator. *)
let counts_for_bytes (target : int) : counts =
  let f = float_of_int target /. 100_000_000.0 *. 2.34 in
  let n base = max 1 (int_of_float (float_of_int base *. f)) in
  {
    n_categories = n 1000;
    n_items =
      [
        ("africa", n 550); ("asia", n 2000); ("australia", n 2200);
        ("europe", n 6000); ("namerica", n 10000); ("samerica", n 1000);
      ];
    n_persons = n 25500;
    n_open = n 12000;
    n_closed = n 9750;
  }

(* ------------------------------------------------------------------ *)

let elem name ?(attrs = []) children =
  Node.element name
    ~attrs:(List.map (fun (n, v) -> Node.attribute n v) attrs)
    ~children

let text_elem name s = elem name [ Node.text s ]

let sentence rng n =
  String.concat " " (List.init n (fun _ -> Prng.pick rng words))

let money rng lo hi = Printf.sprintf "%.2f" (Prng.float_range rng lo hi)

let date rng =
  Printf.sprintf "%02d/%02d/%04d" (1 + Prng.int rng 12) (1 + Prng.int rng 28)
    (1998 + Prng.int rng 4)

let time rng =
  Printf.sprintf "%02d:%02d:%02d" (Prng.int rng 24) (Prng.int rng 60) (Prng.int rng 60)

let person_ref rng n_persons = Printf.sprintf "person%d" (Prng.int rng n_persons)

(* Rich text with keyword/bold/emph markup, as in item descriptions. *)
let rich_text rng =
  let pieces = ref [] in
  let n = 2 + Prng.int rng 4 in
  for _ = 1 to n do
    pieces := Node.text (" " ^ sentence rng (3 + Prng.int rng 8) ^ " ") :: !pieces;
    if Prng.prob rng 0.4 then
      let wrapped = text_elem (Prng.pick rng [| "keyword"; "bold"; "emph" |]) (Prng.pick rng words) in
      pieces := wrapped :: !pieces
  done;
  elem "text" (List.rev !pieces)

(* A description: either direct text or a parlist; annotation descriptions
   nest a second parlist level so the Q15/Q16 paths
   (.../parlist/listitem/parlist/listitem/text/emph/keyword/text()) have
   matches. *)
let description rng ~allow_nested =
  let listitem () =
    if allow_nested && Prng.prob rng 0.35 then
      elem "listitem"
        [
          elem "parlist"
            [
              elem "listitem"
                [
                  elem "text"
                    [
                      Node.text (sentence rng 4 ^ " ");
                      elem "emph" [ text_elem "keyword" (Prng.pick rng words) ];
                      Node.text (" " ^ sentence rng 3);
                    ];
                ];
            ];
        ]
    else elem "listitem" [ rich_text rng ]
  in
  if Prng.prob rng 0.5 then
    elem "description" [ elem "parlist" (List.init (1 + Prng.int rng 2) (fun _ -> listitem ())) ]
  else elem "description" [ rich_text rng ]

let category rng i =
  elem "category"
    ~attrs:[ ("id", Printf.sprintf "category%d" i) ]
    [ text_elem "name" (sentence rng 2); description rng ~allow_nested:false ]

let item rng ~n_categories i =
  let mail () =
    elem "mail"
      [
        text_elem "from" (Prng.pick rng first_names ^ " " ^ Prng.pick rng last_names);
        text_elem "to" (Prng.pick rng first_names ^ " " ^ Prng.pick rng last_names);
        text_elem "date" (date rng);
        rich_text rng;
      ]
  in
  let incategories =
    List.init (1 + Prng.int rng 2) (fun _ ->
        elem "incategory"
          ~attrs:[ ("category", Printf.sprintf "category%d" (Prng.int rng n_categories)) ]
          [])
  in
  elem "item"
    ~attrs:[ ("id", Printf.sprintf "item%d" i) ]
    ([
       text_elem "location" (Prng.pick rng countries);
       text_elem "quantity" (string_of_int (1 + Prng.int rng 5));
       text_elem "name" (sentence rng 2);
       text_elem "payment" "Creditcard";
       description rng ~allow_nested:false;
       text_elem "shipping" "Will ship internationally";
     ]
    @ incategories
    @ [ elem "mailbox" (List.init (Prng.int rng 2) (fun _ -> mail ())) ])

let person rng ~n_categories ~n_open i =
  let name = Prng.pick rng first_names ^ " " ^ Prng.pick rng last_names in
  let base =
    [
      text_elem "name" name;
      text_elem "emailaddress"
        (Printf.sprintf "mailto:%s@%s.com"
           (String.map (function ' ' -> '.' | c -> c) name)
           (Prng.pick rng words));
    ]
  in
  let phone = if Prng.prob rng 0.4 then [ text_elem "phone" (Printf.sprintf "+%d (%d) %d" (Prng.int rng 99) (Prng.int rng 999) (Prng.int rng 10_000_000)) ] else [] in
  let address =
    if Prng.prob rng 0.6 then
      [
        elem "address"
          [
            text_elem "street" (Printf.sprintf "%d %s St" (1 + Prng.int rng 99) (Prng.pick rng words));
            text_elem "city" (Prng.pick rng cities);
            text_elem "country" (Prng.pick rng countries);
            text_elem "zipcode" (string_of_int (10000 + Prng.int rng 89999));
          ];
      ]
    else []
  in
  let homepage =
    if Prng.prob rng 0.5 then
      [ text_elem "homepage" (Printf.sprintf "http://www.%s.com/~%s" (Prng.pick rng words) (Prng.pick rng first_names)) ]
    else []
  in
  let creditcard =
    if Prng.prob rng 0.5 then
      [ text_elem "creditcard" (Printf.sprintf "%d %d %d %d" (1000 + Prng.int rng 9000) (1000 + Prng.int rng 9000) (1000 + Prng.int rng 9000) (1000 + Prng.int rng 9000)) ]
    else []
  in
  let profile =
    if Prng.prob rng 0.8 then
      let interests =
        List.init (Prng.int rng 4) (fun _ ->
            elem "interest"
              ~attrs:[ ("category", Printf.sprintf "category%d" (Prng.int rng n_categories)) ]
              [])
      in
      [
        elem "profile"
          ~attrs:[ ("income", money rng 9876.0 150000.0) ]
          (interests
          @ [
              text_elem "education" "Graduate School";
              text_elem "business" (if Prng.prob rng 0.5 then "Yes" else "No");
            ])
      ]
    else []
  in
  let watches =
    if Prng.prob rng 0.4 then
      [
        elem "watches"
          (List.init (1 + Prng.int rng 3) (fun _ ->
               elem "watch"
                 ~attrs:[ ("open_auction", Printf.sprintf "open_auction%d" (Prng.int rng n_open)) ]
                 []));
      ]
    else []
  in
  elem "person"
    ~attrs:[ ("id", Printf.sprintf "person%d" i) ]
    (base @ phone @ address @ homepage @ creditcard @ profile @ watches)

let annotation rng ~n_persons =
  elem "annotation"
    [
      elem "author" ~attrs:[ ("person", person_ref rng n_persons) ] [];
      description rng ~allow_nested:true;
      text_elem "happiness" (string_of_int (1 + Prng.int rng 10));
    ]

let open_auction rng ~n_persons ~n_items i =
  let initial = money rng 1.0 300.0 in
  let bidders =
    List.init (Prng.int rng 6) (fun k ->
        elem "bidder"
          [
            text_elem "date" (date rng);
            text_elem "time" (time rng);
            elem "personref" ~attrs:[ ("person", person_ref rng n_persons) ] [];
            text_elem "increase" (money rng 1.5 (3.0 +. (float_of_int k *. 6.0)));
          ])
  in
  let reserve = if Prng.prob rng 0.4 then [ text_elem "reserve" (money rng 50.0 400.0) ] else [] in
  elem "open_auction"
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" i) ]
    ([ text_elem "initial" initial ] @ reserve @ bidders
    @ [
        text_elem "current" (money rng 1.0 600.0);
        elem "itemref" ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng n_items)) ] [];
        elem "seller" ~attrs:[ ("person", person_ref rng n_persons) ] [];
        annotation rng ~n_persons;
        text_elem "quantity" (string_of_int (1 + Prng.int rng 5));
        text_elem "type" (if Prng.prob rng 0.5 then "Regular" else "Featured");
        elem "interval" [ text_elem "start" (date rng); text_elem "end" (date rng) ];
      ])

let closed_auction rng ~n_persons ~n_items =
  elem "closed_auction"
    [
      elem "seller" ~attrs:[ ("person", person_ref rng n_persons) ] [];
      elem "buyer" ~attrs:[ ("person", person_ref rng n_persons) ] [];
      elem "itemref" ~attrs:[ ("item", Printf.sprintf "item%d" (Prng.int rng n_items)) ] [];
      text_elem "price" (money rng 1.0 600.0);
      text_elem "date" (date rng);
      text_elem "quantity" (string_of_int (1 + Prng.int rng 5));
      text_elem "type" (if Prng.prob rng 0.5 then "Regular" else "Featured");
      annotation rng ~n_persons;
    ]

(* ------------------------------------------------------------------ *)

let generate ?(seed = 42) ~target_bytes () : Node.t =
  let rng = Prng.create ~seed () in
  let c = counts_for_bytes target_bytes in
  let n_items_total = List.fold_left (fun acc (_, n) -> acc + n) 0 c.n_items in
  let next_item = ref 0 in
  let regions =
    elem "regions"
      (List.map
         (fun (region, n) ->
           elem region
             (List.init n (fun _ ->
                  let i = !next_item in
                  incr next_item;
                  item rng ~n_categories:c.n_categories i)))
         c.n_items)
  in
  let categories =
    elem "categories" (List.init c.n_categories (category rng))
  in
  let catgraph =
    elem "catgraph"
      (List.init (c.n_categories / 2) (fun _ ->
           elem "edge"
             ~attrs:
               [
                 ("from", Printf.sprintf "category%d" (Prng.int rng c.n_categories));
                 ("to", Printf.sprintf "category%d" (Prng.int rng c.n_categories));
               ]
             []))
  in
  let people =
    elem "people"
      (List.init c.n_persons (person rng ~n_categories:c.n_categories ~n_open:c.n_open))
  in
  let open_auctions =
    elem "open_auctions"
      (List.init c.n_open (open_auction rng ~n_persons:c.n_persons ~n_items:n_items_total))
  in
  let closed_auctions =
    elem "closed_auctions"
      (List.init c.n_closed (fun _ ->
           closed_auction rng ~n_persons:c.n_persons ~n_items:n_items_total))
  in
  let doc =
    Node.document ~uri:"xmark.xml"
      [ elem "site" [ regions; categories; catgraph; people; open_auctions; closed_auctions ] ]
  in
  Node.renumber doc;
  doc

let generate_string ?seed ~target_bytes () : string =
  Serializer.node_to_string (generate ?seed ~target_bytes ())
