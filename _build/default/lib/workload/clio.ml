(* The Clio workload: a DBLP-shaped bibliography document and the three
   nested mapping queries of Table 5.

   The paper describes N2/N3/N4 only by their structure — N2 is a doubly
   nested FLWOR with a single join, N3 a triple-nested FLWOR with a 3-way
   join, N4 a quadruple-nested FLWOR with a 6-way join — run on a 250KB
   document.  The queries below are modelled on the Clio-generated query
   of the paper's Figure 1 (schema mapping from DBLP to an author-centric
   database): each nesting level performs an author/year equality join
   back into the paper collections. *)

open Xqc_xml

let elem name ?(attrs = []) children =
  Node.element name
    ~attrs:(List.map (fun (n, v) -> Node.attribute n v) attrs)
    ~children

let text_elem name s = elem name [ Node.text s ]

(* Author pool sized so that each author has a realistic publication
   fan-out (~4 papers), which is what gives the self-joins their cost. *)
let author_name i = Printf.sprintf "Author %03d" i

let paper rng kind ~n_authors i =
  let authors =
    List.init
      (1 + Prng.int rng 2)
      (fun _ -> text_elem "author" (author_name (Prng.int rng n_authors)))
  in
  let year = 1986 + Prng.int rng 20 in
  elem kind
    ~attrs:[ ("key", Printf.sprintf "%s/%d" kind i) ]
    (authors
    @ [
        text_elem "title"
          (String.concat " "
             (List.init (3 + Prng.int rng 5) (fun _ -> Prng.pick rng Xmark.words)));
        text_elem "pages" (Printf.sprintf "%d-%d" (Prng.int rng 400) (Prng.int rng 400 + 400));
        text_elem "year" (string_of_int year);
        text_elem (if kind = "inproceedings" then "booktitle" else "journal")
          (Prng.pick rng [| "VLDB"; "SIGMOD"; "ICDE"; "TODS"; "VLDBJ"; "PODS" |]);
        text_elem "url" (Printf.sprintf "db/%s/%d.html" kind i);
      ])

(* A DBLP-style document of roughly [target_bytes] bytes. *)
let generate ?(seed = 7) ~target_bytes () : Node.t =
  let rng = Prng.create ~seed () in
  (* one paper record serializes to ~260 bytes *)
  let n_papers = max 4 (target_bytes / 260) in
  let n_inproc = n_papers * 3 / 4 in
  let n_articles = n_papers - n_inproc in
  let n_authors = max 2 (n_papers / 4) in
  let doc =
    Node.document ~uri:"dblp.xml"
      [
        elem "dblp"
          (List.init n_inproc (paper rng "inproceedings" ~n_authors)
          @ List.init n_articles (paper rng "article" ~n_authors));
      ]
  in
  Node.renumber doc;
  doc

let generate_string ?seed ~target_bytes () : string =
  Serializer.node_to_string (generate ?seed ~target_bytes ())

(* N2: doubly nested FLWOR, one author-equality self-join. *)
let n2 =
  {|<authorDB>{
      for $p in $doc/dblp/inproceedings, $a in $p/author return
      <author>
        <name>{$a/text()}</name>
        <pubs>{
          for $p2 in $doc/dblp/inproceedings
          where $a/text() = $p2/author/text()
          return <pub><title>{$p2/title/text()}</title><year>{$p2/year/text()}</year></pub>
        }</pubs>
      </author>
    }</authorDB>|}

(* N3: triple-nested FLWOR, 3-way join (authors x conference papers x
   journal articles of the same year). *)
let n3 =
  {|<authorDB>{
      for $p in $doc/dblp/inproceedings, $a in $p/author return
      <author>
        <name>{$a/text()}</name>
        <confs>{
          for $p2 in $doc/dblp/inproceedings
          where $a/text() = $p2/author/text()
          return <conf>
            <title>{$p2/title/text()}</title>
            <sameyear>{
              for $j in $doc/dblp/article
              where $j/year/text() = $p2/year/text()
              return <jtitle>{$j/title/text()}</jtitle>
            }</sameyear>
          </conf>
        }</confs>
      </author>
    }</authorDB>|}

(* N4: quadruple-nested FLWOR, 6-way join (as N3, plus for each same-year
   article the other articles of its first author). *)
let n4 =
  {|<authorDB>{
      for $p in $doc/dblp/inproceedings, $a in $p/author return
      <author>
        <name>{$a/text()}</name>
        <confs>{
          for $p2 in $doc/dblp/inproceedings
          where $a/text() = $p2/author/text()
          return <conf>
            <title>{$p2/title/text()}</title>
            <sameyear>{
              for $j in $doc/dblp/article
              where $j/year/text() = $p2/year/text()
              return <jrec>
                <jtitle>{$j/title/text()}</jtitle>
                <more>{
                  for $j2 in $doc/dblp/article
                  where $j2/author/text() = $j/author[1]/text()
                  return <co>{$j2/title/text()}</co>
                }</more>
              </jrec>
            }</sameyear>
          </conf>
        }</confs>
      </author>
    }</authorDB>|}

(* The paper's Figure 1 query (Clio's generated DBLP -> authorDB mapping),
   adapted to this generator's element names: an authorDB of deep-distinct
   authors, each with their publications grouped per conference/year. *)
let figure1 =
  {|<authorDB>{
      clio:deep-distinct(
        for $x0 in $doc/dblp/inproceedings, $x1 in $x0/author return
        <author>
          <name>{$x1/text()}</name>
          <conf_jour>
            <name>{concat("SK700(", $x1/text(), ")")}</name>
            <year>
              <yr/>
              {clio:deep-distinct(
                for $x0L1 in $doc/dblp/inproceedings
                where $x1/text() = $x0L1/author/text()
                return
                <pub>
                  <pub_id>{concat("SK694(", string($x0L1/@key), ")")}</pub_id>
                  <title>{$x0L1/title/text()}</title>
                  <pages>{$x0L1/pages/text()}</pages>
                  <url>{$x0L1/url/text()}</url>
                </pub>)}
            </year>
          </conf_jour>
        </author>)
    }<dateCreated/></authorDB>|}

let all : (string * string) list =
  [ ("N2", n2); ("N3", n3); ("N4", n4); ("Figure1", figure1) ]

let find (name : string) : string = List.assoc name all
