lib/workload/clio.mli: Node Xqc_xml
