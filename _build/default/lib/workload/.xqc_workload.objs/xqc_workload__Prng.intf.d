lib/workload/prng.mli:
