lib/workload/xmark_queries.mli:
