lib/workload/xmark.ml: List Node Printf Prng Serializer String Xqc_xml
