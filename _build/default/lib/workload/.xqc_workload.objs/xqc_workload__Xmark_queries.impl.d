lib/workload/xmark_queries.ml: List
