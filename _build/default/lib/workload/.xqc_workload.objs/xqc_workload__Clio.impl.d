lib/workload/clio.ml: List Node Printf Prng Serializer String Xmark Xqc_xml
