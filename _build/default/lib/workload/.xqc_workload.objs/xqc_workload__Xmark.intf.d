lib/workload/xmark.mli: Node Xqc_xml
