(* The twenty XMark benchmark queries (Schmidt et al., VLDB 2002), written
   against an externally bound $auction document variable, as in the
   paper's plans ("$auction//person").  The texts follow the published
   benchmark; small syntactic adaptations to this engine's XQuery subset
   are noted inline. *)

let q1 =
  {|for $b in $auction/site/people/person[@id = "person0"] return $b/name/text()|}

let q2 =
  {|for $b in $auction/site/open_auctions/open_auction
    return <increase>{$b/bidder[1]/increase/text()}</increase>|}

let q3 =
  {|for $b in $auction/site/open_auctions/open_auction
    where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
    return <increase first="{$b/bidder[1]/increase/text()}"
                     last="{$b/bidder[last()]/increase/text()}"/>|}

let q4 =
  {|for $b in $auction/site/open_auctions/open_auction
    where some $pr1 in $b/bidder/personref[@person = "person18"],
               $pr2 in $b/bidder/personref[@person = "person52"]
          satisfies $pr1 << $pr2
    return <history>{$b/reserve/text()}</history>|}

let q5 =
  {|count(for $i in $auction/site/closed_auctions/closed_auction
          where $i/price/text() >= 40
          return $i/price)|}

let q6 = {|for $b in $auction//site/regions return count($b//item)|}

let q7 =
  {|for $p in $auction/site
    return count($p//description) + count($p//annotation) + count($p//emailaddress)|}

let q8 =
  {|for $p in $auction/site/people/person
    let $a := for $t in $auction/site/closed_auctions/closed_auction
              where $t/buyer/@person = $p/@id
              return $t
    return <item person="{$p/name/text()}">{count($a)}</item>|}

let q9 =
  {|for $p in $auction/site/people/person
    let $a := for $t in $auction/site/closed_auctions/closed_auction
              let $n := for $t2 in $auction/site/regions/europe/item
                        where $t/itemref/@item = $t2/@id
                        return $t2
              where $p/@id = $t/buyer/@person
              return <item>{$n/name/text()}</item>
    return <person name="{$p/name/text()}">{$a}</person>|}

(* Q10: group people by interest category.  The original materializes a
   large <personne> record; we keep the representative fields supported
   by the generator's schema. *)
let q10 =
  {|for $i in distinct-values($auction/site/people/person/profile/interest/@category)
    let $p := for $t in $auction/site/people/person
              where $t/profile/interest/@category = $i
              return <personne>
                       <statistiques>
                         <sexe>{$t/profile/gender/text()}</sexe>
                         <age>{$t/profile/age/text()}</age>
                         <education>{$t/profile/education/text()}</education>
                         <revenu>{$t/profile/@income}</revenu>
                       </statistiques>
                       <coordonnees>
                         <nom>{$t/name/text()}</nom>
                         <rue>{$t/address/street/text()}</rue>
                         <ville>{$t/address/city/text()}</ville>
                         <pays>{$t/address/country/text()}</pays>
                         <courrier>{$t/emailaddress/text()}</courrier>
                       </coordonnees>
                       <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                     </personne>
    return <categorie>{<id>{$i}</id>}{$p}</categorie>|}

let q11 =
  {|for $p in $auction/site/people/person
    let $l := for $i in $auction/site/open_auctions/open_auction/initial
              where $p/profile/@income > 5000 * exactly-one($i/text())
              return $i
    return <items name="{$p/name/text()}">{count($l)}</items>|}

let q12 =
  {|for $p in $auction/site/people/person
    let $l := for $i in $auction/site/open_auctions/open_auction/initial
              where $p/profile/@income > 5000 * exactly-one($i/text())
              return $i
    where $p/profile/@income > 50000
    return <items person="{$p/profile/@income}">{count($l)}</items>|}

let q13 =
  {|for $i in $auction/site/regions/australia/item
    return <item name="{$i/name/text()}">{$i/description}</item>|}

let q14 =
  {|for $i in $auction/site//item
    where contains(string(exactly-one($i/description)), "gold")
    return $i/name/text()|}

let q15 =
  {|for $a in $auction/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
    return <text>{$a}</text>|}

let q16 =
  {|for $a in $auction/site/closed_auctions/closed_auction
    where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
    return <person id="{$a/seller/@person}"/>|}

let q17 =
  {|for $p in $auction/site/people/person
    where empty($p/homepage/text())
    return <person name="{$p/name/text()}"/>|}

let q18 =
  {|declare function local:convert($v) { 2.20371 * $v };
    for $i in $auction/site/open_auctions/open_auction
    return local:convert(zero-or-one($i/reserve/text()))|}

let q19 =
  {|for $b in $auction/site/regions//item
    let $k := $b/name/text()
    order by zero-or-one($b/location) ascending empty greatest
    return <item name="{$k}">{$b/location/text()}</item>|}

let q20 =
  {|<result>
     <preferred>{count($auction/site/people/person/profile[@income >= 100000])}</preferred>
     <standard>{count($auction/site/people/person/profile[@income < 100000 and @income >= 30000])}</standard>
     <challenge>{count($auction/site/people/person/profile[@income < 30000])}</challenge>
     <na>{count(for $p in $auction/site/people/person
                where empty($p/profile/@income)
                return $p)}</na>
   </result>|}

let all : (string * string) list =
  [
    ("Q1", q1); ("Q2", q2); ("Q3", q3); ("Q4", q4); ("Q5", q5); ("Q6", q6);
    ("Q7", q7); ("Q8", q8); ("Q9", q9); ("Q10", q10); ("Q11", q11);
    ("Q12", q12); ("Q13", q13); ("Q14", q14); ("Q15", q15); ("Q16", q16);
    ("Q17", q17); ("Q18", q18); ("Q19", q19); ("Q20", q20);
  ]

let find (name : string) : string = List.assoc name all
