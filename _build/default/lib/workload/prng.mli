(** A small deterministic PRNG (xorshift64), so generated workload
    documents are reproducible across runs and platforms. *)

type t

val create : ?seed:int -> unit -> t

val next : t -> int64

val int : t -> int -> int
(** Uniform integer in [\[0, n)].  @raise Invalid_argument if [n <= 0]. *)

val pick : t -> 'a array -> 'a

val prob : t -> float -> bool
(** True with the given probability. *)

val float_range : t -> float -> float -> float
