(** A synthetic XMark auction-site document generator.

    Follows the XMark benchmark schema (site / regions / categories /
    catgraph / people / open_auctions / closed_auctions) closely enough
    that the twenty benchmark queries exercise the same paths, joins and
    cardinalities as the original xmlgen documents; entity counts scale
    linearly with the byte budget, and cross-references are drawn
    uniformly, preserving the join fan-outs the paper's experiments rely
    on.  Deterministic for a given seed. *)

open Xqc_xml

val generate : ?seed:int -> target_bytes:int -> unit -> Node.t
(** An in-memory document of approximately [target_bytes] serialized
    bytes (calibrated within roughly ±20%). *)

val generate_string : ?seed:int -> target_bytes:int -> unit -> string

val words : string array
(** The text vocabulary (shared with the Clio generator). *)

type counts = {
  n_categories : int;
  n_items : (string * int) list;  (** per region *)
  n_persons : int;
  n_open : int;
  n_closed : int;
}

val counts_for_bytes : int -> counts
