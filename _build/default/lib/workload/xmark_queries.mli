(** The twenty XMark benchmark queries (Schmidt et al., VLDB 2002),
    written against an externally bound [$auction] document variable, as
    in the paper's plans.  Small adaptations to this engine's XQuery
    subset are commented in the implementation. *)

val q1 : string
val q2 : string
val q3 : string
val q4 : string
val q5 : string
val q6 : string
val q7 : string
val q8 : string

val q9 : string
(** The paper's Section 2 running example family: Q8/Q9 are the nested
    FLWOR + join queries that the GroupBy unnesting serves. *)

val q10 : string
val q11 : string

val q12 : string
(** Inequality join — served by the sort join at the physical level. *)

val q13 : string
val q14 : string
val q15 : string
val q16 : string
val q17 : string
val q18 : string
val q19 : string
val q20 : string

val all : (string * string) list
(** [("Q1", q1); ...; ("Q20", q20)]. *)

val find : string -> string
(** @raise Not_found for unknown names. *)
