(** The Clio workload of Table 5: a DBLP-shaped bibliography generator
    and the three nested mapping queries N2/N3/N4 (double/triple/
    quadruple-nested FLWOR with author/year equality joins of increasing
    width), modelled on the paper's Figure 1 mapping query. *)

open Xqc_xml

val generate : ?seed:int -> target_bytes:int -> unit -> Node.t
val generate_string : ?seed:int -> target_bytes:int -> unit -> string

val author_name : int -> string

val n2 : string
(** Doubly nested FLWOR, one author-equality self-join. *)

val n3 : string
(** Triple-nested FLWOR, 3-way join (+ same-year journal articles). *)

val n4 : string
(** Quadruple-nested FLWOR, adding each same-year article's first
    author's other articles. *)

val figure1 : string
(** The paper's Figure 1 query (the Clio-generated DBLP -> authorDB
    mapping), including the clio:deep-distinct calls, adapted to this
    generator's element names. *)

val all : (string * string) list
val find : string -> string
