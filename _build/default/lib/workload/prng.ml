(* A small deterministic PRNG (xorshift64 star) so that generated workload
   documents are reproducible across runs and platforms — the equivalent
   of xmlgen's fixed-seed behaviour. *)

type t = { mutable state : int64 }

let create ?(seed = 88172645463325252) () = { state = Int64.of_int seed }

let next (t : t) : int64 =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  x

(* Uniform integer in [0, n). *)
let int (t : t) (n : int) : int =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 2) (Int64.of_int n))

let pick (t : t) (arr : 'a array) : 'a = arr.(int t (Array.length arr))

(* True with probability [p]. *)
let prob (t : t) (p : float) : bool = float_of_int (int t 10_000) < p *. 10_000.0

let float_range (t : t) (lo : float) (hi : float) : float =
  lo +. (float_of_int (int t 1_000_000) /. 1_000_000.0 *. (hi -. lo))
