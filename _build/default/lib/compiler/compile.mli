(** Algebraic compilation: XQuery Core -> logical algebra (Section 4).

    FLWOR blocks thread an intermediate plan through their clauses per
    Figure 2 (for -> MapConcat/MapFromItem [+ MapIndex for "at"], let ->
    MapConcat of a tuple constructor, where -> Select, order by ->
    OrderBy, return -> MapToItem); typeswitch follows Figure 3.  A FLWOR
    in a dependent context chains from IN, which is what later lets the
    unnesting rewritings see through nested blocks. *)

open Xqc_frontend
open Xqc_algebra

(** Compilation environment: which variables are tuple fields of IN
    (compiled to IN#q) versus function parameters / globals (Var[q]). *)
type env = { fields : string list; in_tuple_context : bool }

val top_env : env

val compile : env -> Core_ast.cexpr -> Algebra.plan

type compiled_function = {
  fn_name : string;
  fn_params : string list;
  fn_body : Algebra.plan;
}

type compiled_query = {
  cfunctions : compiled_function list;
  cglobals : (string * Algebra.plan) list;  (** declare variable, in order *)
  cmain : Algebra.plan;
}

val compile_query : Core_ast.cquery -> compiled_query

val compile_string : string -> compiled_query
(** Parse, normalize and compile in one step (unoptimized plan). *)
