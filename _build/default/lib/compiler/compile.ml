(* Algebraic compilation: XQuery Core -> logical algebra (Section 4).

   The compilation environment tracks which variables are tuple fields of
   the enclosing FLWOR blocks (compiled to IN#q accesses) versus function
   parameters / globals (compiled to Var[q]).  FLWOR blocks thread an
   intermediate plan through their clauses exactly as in Figure 2:

     for  ->  MapConcat{MapFromItem{[x : TypeAssert(IN)]}(source)}(Op0)
              (+ MapIndex for "at" variables)
     let  ->  MapConcat{[x : value]}(Op0)
     where -> Select{pred}(Op0)
     order -> OrderBy{keys}(Op0)
     return -> MapToItem{body}(Op0)

   A FLWOR in a tuple context starts from IN (the singleton table of the
   current input tuple), which is what later lets the unnesting rewritings
   see through nested blocks; at query top level it starts from the unit
   table [].  *)

open Xqc_frontend
open Xqc_algebra
open Algebra

type env = {
  fields : string list;  (** variables that are tuple fields of IN *)
  in_tuple_context : bool;
}

let top_env = { fields = []; in_tuple_context = false }

let rec compile (env : env) (e : Core_ast.cexpr) : plan =
  match e with
  | Core_ast.C_empty -> Empty
  | Core_ast.C_scalar a -> Scalar a
  | Core_ast.C_seq (a, b) -> Seq (compile env a, compile env b)
  | Core_ast.C_var v ->
      if List.mem v env.fields then FieldAccess v else Var v
  | Core_ast.C_elem (n, c) -> Element (n, compile env c)
  | Core_ast.C_attr (n, c) -> Attribute (n, compile env c)
  | Core_ast.C_text c -> Text (compile env c)
  | Core_ast.C_comment c -> Comment (compile env c)
  | Core_ast.C_pi (n, c) -> Pi (n, compile env c)
  | Core_ast.C_if (c, t, e) -> Cond (compile env c, compile env t, compile env e)
  | Core_ast.C_flwor (clauses, orders, ret) -> compile_flwor env clauses orders ret
  | Core_ast.C_quant (q, v, source, body) -> compile_quant env q v source body
  | Core_ast.C_typeswitch (x, scrut, cases, default) ->
      compile_typeswitch env x scrut cases default
  | Core_ast.C_call ("fn:doc", [ uri ]) -> Parse (compile env uri)
  | Core_ast.C_call (f, args) -> Call (f, List.map (compile env) args)
  | Core_ast.C_treejoin (axis, test, input) -> TreeJoin (axis, test, compile env input)
  | Core_ast.C_instance_of (c, ty) -> TypeMatches (ty, compile env c)
  | Core_ast.C_typeassert (c, ty) -> TypeAssert (ty, compile env c)
  | Core_ast.C_cast (c, tn, opt) -> Cast (tn, opt, compile env c)
  | Core_ast.C_castable (c, tn, opt) -> Castable (tn, opt, compile env c)
  | Core_ast.C_validate c -> Validate (compile env c)

(* The initial tuple stream for a FLWOR / quantifier block. *)
and initial_table env = if env.in_tuple_context then Input else TupleConstruct []

and assert_type astype plan =
  match astype with None -> plan | Some ty -> TypeAssert (ty, plan)

and compile_flwor env clauses orders ret =
  let rec clause_loop env op0 = function
    | [] ->
        let op0 =
          match orders with
          | [] -> op0
          | _ ->
              let specs =
                List.map
                  (fun o ->
                    {
                      skey = compile env o.Core_ast.ckey;
                      sdir = o.Core_ast.cdir;
                      sempty = o.Core_ast.cempty;
                    })
                  orders
              in
              OrderBy (specs, op0)
        in
        MapToItem (compile env ret, op0)
    | Core_ast.CC_for { var; at_var; astype; source } :: rest ->
        let source_plan = compile env source in
        let dep =
          MapFromItem (TupleConstruct [ (var, assert_type astype Input) ], source_plan)
        in
        let op = MapConcat (dep, op0) in
        let env = { env with fields = var :: env.fields } in
        let op, env =
          match at_var with
          | None -> (op, env)
          | Some i -> (MapIndex (i, op), { env with fields = i :: env.fields })
        in
        clause_loop env op rest
    | Core_ast.CC_let { var; astype; value } :: rest ->
        let value_plan = assert_type astype (compile env value) in
        let op = MapConcat (TupleConstruct [ (var, value_plan) ], op0) in
        clause_loop { env with fields = var :: env.fields } op rest
    | Core_ast.CC_where w :: rest ->
        clause_loop env (Select (compile env w, op0)) rest
  in
  let inner_env = { env with in_tuple_context = true } in
  clause_loop inner_env (initial_table env) clauses

and compile_quant env q v source body =
  let source_plan = compile env source in
  let dep = MapFromItem (TupleConstruct [ (v, Input) ], source_plan) in
  let stream = MapConcat (dep, initial_table env) in
  let env' = { in_tuple_context = true; fields = v :: env.fields } in
  let body_plan = compile env' body in
  match q with
  | Ast.Some_quant -> MapSome (body_plan, stream)
  | Ast.Every_quant -> MapEvery (body_plan, stream)

and compile_typeswitch env x scrut cases default =
  let scrut_plan = compile env scrut in
  let input = MapConcat (TupleConstruct [ (x, scrut_plan) ], initial_table env) in
  let env' = { in_tuple_context = true; fields = x :: env.fields } in
  let rec build = function
    | [] -> compile env' default
    | (ty, body) :: rest ->
        Cond (TypeMatches (ty, FieldAccess x), compile env' body, build rest)
  in
  MapToItem (build cases, input)

(* ------------------------------------------------------------------ *)

type compiled_function = {
  fn_name : string;
  fn_params : string list;
  fn_body : plan;
}

type compiled_query = {
  cfunctions : compiled_function list;
  cglobals : (string * plan) list;
  cmain : plan;
}

let compile_query (q : Core_ast.cquery) : compiled_query =
  let compile_function (f : Core_ast.cfunction) =
    (* parameters are Var[q] leaves, not tuple fields *)
    let body = compile top_env f.Core_ast.cf_body in
    let body =
      match f.Core_ast.cf_return with
      | None -> body
      | Some ty -> TypeAssert (ty, body)
    in
    { fn_name = f.Core_ast.cf_name;
      fn_params = List.map fst f.Core_ast.cf_params;
      fn_body = body }
  in
  {
    cfunctions = List.map compile_function q.Core_ast.cq_functions;
    cglobals =
      List.map (fun (v, e) -> (v, compile top_env e)) q.Core_ast.cq_globals;
    cmain = compile top_env q.Core_ast.cq_main;
  }

let compile_string (src : string) : compiled_query =
  compile_query (Normalize.normalize_string src)
