lib/compiler/compile.ml: Algebra Ast Core_ast List Normalize Xqc_algebra Xqc_frontend
