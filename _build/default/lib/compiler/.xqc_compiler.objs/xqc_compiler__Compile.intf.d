lib/compiler/compile.mli: Algebra Core_ast Xqc_algebra Xqc_frontend
