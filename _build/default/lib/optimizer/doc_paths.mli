(** Static path analysis for document projection (Marian & Siméon, the
    projection technique the paper cites).

    For every free document variable of a query, compute projection specs
    covering all accesses: navigation extends paths; structural uses
    (iteration, counting, existence, type tests) mark nodes node-only;
    value uses (atomization, construction, validation, the serialized
    result) mark subtrees; reverse/sibling axes or constructs the
    analysis cannot see through mark the source unsafe. *)

open Xqc_frontend

type step = Ast.axis * Ast.node_test

type spec = { steps : step list; subtree : bool }

val analyze : Core_ast.cquery -> (string * spec list option) list
(** Per tracked free variable: [Some specs] to project with, or [None]
    when the variable escaped the analysis and projection must be
    skipped. *)
