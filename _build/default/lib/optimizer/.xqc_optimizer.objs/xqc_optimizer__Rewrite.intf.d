lib/optimizer/rewrite.mli: Algebra Promotion Xqc_algebra Xqc_types
