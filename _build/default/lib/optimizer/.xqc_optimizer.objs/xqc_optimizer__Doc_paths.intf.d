lib/optimizer/doc_paths.mli: Ast Core_ast Xqc_frontend
