lib/optimizer/static_type.ml: Algebra Ast Atomic List Seqtype Xqc_algebra Xqc_frontend Xqc_types Xqc_xml
