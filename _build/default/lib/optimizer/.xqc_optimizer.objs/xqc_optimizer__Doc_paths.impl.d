lib/optimizer/doc_paths.ml: Ast Core_ast Hashtbl List Xqc_frontend
