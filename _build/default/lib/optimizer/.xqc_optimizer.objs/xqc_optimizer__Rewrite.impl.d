lib/optimizer/rewrite.ml: Algebra Hashtbl List Option Printf Promotion Static_type Xqc_algebra Xqc_types Xqc_xml
