(* Static path analysis for document projection, in the style of Marian &
   Siméon (the paper's cited projection technique).

   For every free (external) document variable of a query, compute the
   set of projection specs — step paths paired with a subtree flag — that
   cover every access the query can make:

   - navigation extends the paths of the value navigated from;
   - structural consumption (for-iteration, counting, existence,
     where-clauses, type matching) marks the reached nodes {e node-only};
   - value consumption (atomization, construction, string functions,
     validation, serialization of the result) marks them {e subtree};
   - reverse or sibling axes applied to tracked nodes, and any construct
     the analysis cannot see through, mark the source {e unsafe} and
     projection is skipped for it.

   The result feeds [Projection.project_specs] on the variable's binding
   before evaluation. *)

open Xqc_frontend
open Core_ast

type step = Ast.axis * Ast.node_test

type spec = { steps : step list; subtree : bool }

(* A tracked value: node sets reached from sources by known paths. *)
type tracked = (string * step list) list
(** (source variable, reversed steps from its root) *)

type acc = {
  specs : (string, spec list ref) Hashtbl.t;
  unsafe : (string, unit) Hashtbl.t;
}

let mark acc ~subtree (rets : tracked) =
  List.iter
    (fun (src, rev_steps) ->
      let cell =
        match Hashtbl.find_opt acc.specs src with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add acc.specs src c;
            c
      in
      let sp = { steps = List.rev rev_steps; subtree } in
      if not (List.mem sp !cell) then cell := sp :: !cell)
    rets

let mark_unsafe acc (rets : tracked) =
  List.iter (fun (src, _) -> Hashtbl.replace acc.unsafe src ()) rets

type env = (string * tracked) list

let forward_axis = function
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Attribute_axis
  | Ast.Self ->
      true
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following_sibling
  | Ast.Preceding_sibling ->
      false

(* Built-ins that only look at the structure/count of their node
   arguments; the nodes themselves must survive projection but not their
   contents. *)
let structural_functions =
  [ "fn:count"; "fn:empty"; "fn:exists"; "fn:boolean"; "fn:not";
    "fs:predicate-truth" ]

(* Built-ins through which node identity flows unchanged. *)
let transparent_functions =
  [ "fn:reverse"; "fn:subsequence"; "fn:insert-before"; "fn:remove";
    "fn:zero-or-one"; "fn:one-or-more"; "fn:exactly-one"; "op:union";
    "op:intersect"; "op:except"; "fn:root" ]

let rec go (acc : acc) (env : env) (e : cexpr) : tracked =
  match e with
  | C_empty | C_scalar _ -> []
  | C_var v -> (
      match List.assoc_opt v env with
      | Some t -> t
      | None -> [ (v, []) ] (* a free variable: a fresh source root *))
  | C_seq (a, b) -> go acc env a @ go acc env b
  | C_treejoin (axis, test, input) ->
      let rets = go acc env input in
      if forward_axis axis then
        List.map (fun (src, steps) -> (src, (axis, test) :: steps)) rets
      else (
        (* reverse navigation escapes the projected cone *)
        mark_unsafe acc rets;
        [])
  | C_elem (_, c) | C_attr (_, c) | C_text c | C_comment c | C_pi (_, c) ->
      (* construction copies content wholesale *)
      mark acc ~subtree:true (go acc env c);
      []
  | C_if (c, t, e) ->
      mark acc ~subtree:false (go acc env c);
      go acc env t @ go acc env e
  | C_flwor (clauses, orders, ret) ->
      let env =
        List.fold_left
          (fun env clause ->
            match clause with
            | CC_for { var; at_var; source; _ } ->
                let rets = go acc env source in
                (* iteration cardinality depends on the nodes existing *)
                mark acc ~subtree:false rets;
                let env = (var, rets) :: env in
                (match at_var with Some a -> (a, []) :: env | None -> env)
            | CC_let { var; value; _ } -> (var, go acc env value) :: env
            | CC_where w ->
                mark acc ~subtree:false (go acc env w);
                env)
          env clauses
      in
      List.iter (fun o -> mark acc ~subtree:true (go acc env o.ckey)) orders;
      go acc env ret
  | C_quant (_, v, source, body) ->
      let rets = go acc env source in
      mark acc ~subtree:false rets;
      mark acc ~subtree:false (go acc ((v, rets) :: env) body);
      []
  | C_typeswitch (x, scrut, cases, default) ->
      let rets = go acc env scrut in
      mark acc ~subtree:false rets;
      let env = (x, rets) :: env in
      List.concat_map (fun (_, b) -> go acc env b) cases @ go acc env default
  | C_call (f, args) ->
      let argrets = List.map (go acc env) args in
      if List.mem f structural_functions then (
        List.iter (mark acc ~subtree:false) argrets;
        [])
      else if List.mem f transparent_functions then List.concat argrets
      else (
        (* atomization, aggregation, user functions: value consumption *)
        List.iter (mark acc ~subtree:true) argrets;
        [])
  | C_instance_of (c, _) ->
      mark acc ~subtree:false (go acc env c);
      []
  | C_typeassert (c, _) -> go acc env c
  | C_cast (c, _, _) | C_castable (c, _, _) ->
      mark acc ~subtree:true (go acc env c);
      []
  | C_validate c ->
      (* validation copies the whole subtree *)
      mark acc ~subtree:true (go acc env c);
      []

(* Analyze a whole query.  Returns, for each free variable that is used
   as a document source, either its projection specs or [None] when the
   variable escaped the analysis (projection must be skipped). *)
let analyze (q : cquery) : (string * spec list option) list =
  let acc = { specs = Hashtbl.create 8; unsafe = Hashtbl.create 4 } in
  let env =
    List.fold_left
      (fun env (v, e) ->
        (* globals are aliases of whatever they compute; a global bound to
           pure navigation from a source keeps the tracking *)
        (v, go acc env e) :: env)
      [] q.cq_globals
  in
  (* user-function bodies: parameters are opaque; free variables inside
     still accumulate into the same tables *)
  List.iter
    (fun f ->
      let param_env = List.map (fun (p, _) -> (p, [])) f.cf_params in
      mark acc ~subtree:true (go acc param_env f.cf_body))
    q.cq_functions;
  (* the main result is serialized: full subtrees *)
  mark acc ~subtree:true (go acc env q.cq_main);
  Hashtbl.fold
    (fun src cell out ->
      if Hashtbl.mem acc.unsafe src then (src, None) :: out
      else (src, Some !cell) :: out)
    acc.specs []
