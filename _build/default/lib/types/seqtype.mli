(** Sequence types and the dynamic type-matching judgment used by
    TypeMatches / TypeAssert (Table 1) and typeswitch (Figure 3). *)

open Xqc_xml

type occurrence = Exactly_one | Zero_or_one | Zero_or_more | One_or_more

type item_type =
  | It_atomic of Atomic.type_name
  | It_element of string option * string option
      (** [element(name?, type?)] — [None] is a wildcard; the type is
          checked with {!Schema.derives_from} against the annotation *)
  | It_attribute of string option * string option
  | It_document
  | It_text
  | It_comment
  | It_pi
  | It_node
  | It_item

type t = Empty_sequence | Occ of item_type * occurrence

(** {1 Constructors} *)

val item : item_type -> t
(** Exactly one. *)

val optional : item_type -> t
val star : item_type -> t
val plus : item_type -> t

(** {1 Printing} *)

val occurrence_to_string : occurrence -> string
val item_type_to_string : item_type -> string
val to_string : t -> string

(** {1 Matching} *)

val atomic_matches : sub:Atomic.type_name -> base:Atomic.type_name -> bool
(** Atomic subtyping: reflexive, plus integer-matches-decimal.  Untyped
    data does {e not} match xs:string. *)

val item_matches : Schema.t -> Item.t -> item_type -> bool

val matches : Schema.t -> Item.sequence -> t -> bool

exception Type_assertion_failure of string

val assert_matches : Schema.t -> Item.sequence -> t -> Item.sequence
(** TypeAssert: identity when the sequence matches.
    @raise Type_assertion_failure otherwise. *)
