(* A declarative mini XML Schema substrate.

   The algebra only consumes *type annotations*: Validate assigns them,
   TypeMatches/TypeAssert test them with derives-from, and fn:data uses
   them to produce typed values.  We therefore model a schema as a set of
   element/attribute declarations plus a type-derivation relation, skipping
   XSD surface syntax (see DESIGN.md, Substitutions).

   An element declaration optionally constrains the parent element name
   (local declarations) and can be conditioned on an attribute value, which
   is how the demo schema distinguishes USSeller/EUSeller the way the
   paper's XMark variant assumes. *)

open Xqc_xml

type element_decl = {
  elem_name : string;  (** "*" matches any element name *)
  parent_name : string option;  (** restrict to children of this element *)
  when_attr : (string * string) option;  (** only when attr has this value *)
  type_name : string;  (** the assigned type annotation *)
}

type attribute_decl = {
  attr_name : string;
  owner_name : string option;
  attr_type : string;
}

type t = {
  element_decls : element_decl list;
  attribute_decls : attribute_decl list;
  derivations : (string * string) list;  (** (type, base-type) pairs *)
  simple_types : (string * Atomic.type_name) list;
      (** schema types whose typed value is the given atomic type *)
}

let empty =
  { element_decls = []; attribute_decls = []; derivations = []; simple_types = [] }

let declare_element ?parent ?when_attr ~name ~type_name schema =
  {
    schema with
    element_decls =
      schema.element_decls
      @ [ { elem_name = name; parent_name = parent; when_attr; type_name } ];
  }

let declare_attribute ?owner ~name ~type_name schema =
  {
    schema with
    attribute_decls =
      schema.attribute_decls
      @ [ { attr_name = name; owner_name = owner; attr_type = type_name } ];
  }

let derive ~sub ~base schema =
  { schema with derivations = (sub, base) :: schema.derivations }

let bind_simple_type ~name ~atomic schema =
  { schema with simple_types = (name, atomic) :: schema.simple_types }

(* derives-from: reflexive-transitive closure of the derivation relation,
   also consulting the built-in atomic hierarchy (integer -> decimal). *)
let rec derives_from schema ~sub ~base =
  String.equal sub base
  || (String.equal sub "xs:integer" && String.equal base "xs:decimal")
  || List.exists
       (fun (s, b) -> String.equal s sub && derives_from schema ~sub:b ~base)
       schema.derivations

let atomic_type_of schema ty =
  match List.assoc_opt ty schema.simple_types with
  | Some a -> Some a
  | None -> Atomic.type_name_of_string ty

exception Validation_error of string

let matching_element_decl schema node =
  let ename = match Node.name node with Some n -> n | None -> "" in
  let parent_elem_name =
    match Node.parent node with
    | Some p -> Node.name p
    | None -> None
  in
  let attr_value name =
    List.find_map
      (fun a ->
        match a.Node.desc with
        | Node.Attribute at when String.equal at.aname name -> Some at.avalue
        | Node.Attribute _ | Node.Document _ | Node.Element _ | Node.Text _
        | Node.Comment _ | Node.Pi _ ->
            None)
      (Node.attributes node)
  in
  List.find_opt
    (fun d ->
      (String.equal d.elem_name "*" || String.equal d.elem_name ename)
      && (match d.parent_name with
         | None -> true
         | Some p -> parent_elem_name = Some p)
      && match d.when_attr with
         | None -> true
         | Some (a, v) -> attr_value a = Some v)
    schema.element_decls

let matching_attribute_decl schema owner_name aname =
  List.find_opt
    (fun d ->
      String.equal d.attr_name aname
      && match d.owner_name with None -> true | Some o -> Some o = owner_name)
    schema.attribute_decls

(* Validation: walk the tree and assign type annotations in place.  The
   Validate operator of Table 1 deep-copies first so that validation of
   constructed content never mutates shared input nodes. *)
let annotate schema (root : Node.t) : unit =
  let rec go node =
    (match node.Node.desc with
    | Node.Element _ ->
        (match matching_element_decl schema node with
        | Some d -> Node.set_type_annotation node (Some d.type_name)
        | None -> ());
        let owner = Node.name node in
        List.iter
          (fun a ->
            match a.Node.desc with
            | Node.Attribute at -> (
                match matching_attribute_decl schema owner at.aname with
                | Some d -> Node.set_type_annotation a (Some d.attr_type)
                | None -> ())
            | Node.Document _ | Node.Element _ | Node.Text _ | Node.Comment _
            | Node.Pi _ ->
                ())
          (Node.attributes node)
    | Node.Document _ | Node.Attribute _ | Node.Text _ | Node.Comment _
    | Node.Pi _ ->
        ());
    List.iter go (Node.children node)
  in
  go root

let validate schema (node : Node.t) : Node.t =
  let copy = Node.copy node in
  Node.renumber copy;
  annotate schema copy;
  copy
