(* Sequence types and the dynamic type-matching judgment used by the
   TypeMatches / TypeAssert / Castable / Cast operators (Table 1) and by
   typeswitch compilation (Figure 3). *)

open Xqc_xml

type occurrence = Exactly_one | Zero_or_one | Zero_or_more | One_or_more

type item_type =
  | It_atomic of Atomic.type_name
  | It_element of string option * string option
      (** element(name?, type?) — None is a wildcard *)
  | It_attribute of string option * string option
  | It_document
  | It_text
  | It_comment
  | It_pi
  | It_node
  | It_item

type t = Empty_sequence | Occ of item_type * occurrence

let item it = Occ (it, Exactly_one)
let optional it = Occ (it, Zero_or_one)
let star it = Occ (it, Zero_or_more)
let plus it = Occ (it, One_or_more)

let occurrence_to_string = function
  | Exactly_one -> ""
  | Zero_or_one -> "?"
  | Zero_or_more -> "*"
  | One_or_more -> "+"

let item_type_to_string = function
  | It_atomic tn -> Atomic.type_name_to_string tn
  | It_element (n, t) ->
      Printf.sprintf "element(%s%s)"
        (Option.value n ~default:"*")
        (match t with None -> "" | Some t -> "," ^ t)
  | It_attribute (n, t) ->
      Printf.sprintf "attribute(%s%s)"
        (Option.value n ~default:"*")
        (match t with None -> "" | Some t -> "," ^ t)
  | It_document -> "document-node()"
  | It_text -> "text()"
  | It_comment -> "comment()"
  | It_pi -> "processing-instruction()"
  | It_node -> "node()"
  | It_item -> "item()"

let to_string = function
  | Empty_sequence -> "empty-sequence()"
  | Occ (it, occ) -> item_type_to_string it ^ occurrence_to_string occ

(* Atomic subtyping: does a value of atomic type [sub] match an expected
   atomic type [base]?  Untyped data does *not* match xs:string; integer
   matches xs:decimal. *)
let atomic_matches ~(sub : Atomic.type_name) ~(base : Atomic.type_name) =
  sub = base || (sub = Atomic.T_integer && base = Atomic.T_decimal)

let node_type_matches schema node expected =
  match expected with
  | None -> true
  | Some base -> (
      match Node.type_annotation node with
      | None ->
          (* Unvalidated nodes have type xdt:untyped / untypedAtomic, which
             only matches the wildcard or those very names. *)
          String.equal base "xdt:untyped" || String.equal base "xdt:untypedAtomic"
      | Some sub -> Schema.derives_from schema ~sub ~base)

let name_matches node expected =
  match expected with
  | None -> true
  | Some n -> ( match Node.name node with Some m -> String.equal m n | None -> false)

let item_matches schema (it : Item.t) (ity : item_type) : bool =
  match (it, ity) with
  | _, It_item -> true
  | Item.Node _, It_node -> true
  | Item.Atom _, It_node -> false
  | Item.Atom a, It_atomic tn -> atomic_matches ~sub:(Atomic.type_of a) ~base:tn
  | Item.Node _, It_atomic _ -> false
  | Item.Node n, It_element (name, ty) ->
      Node.kind n = Node.Kelement && name_matches n name
      && node_type_matches schema n ty
  | Item.Node n, It_attribute (name, ty) ->
      Node.kind n = Node.Kattribute && name_matches n name
      && node_type_matches schema n ty
  | Item.Node n, It_document -> Node.kind n = Node.Kdocument
  | Item.Node n, It_text -> Node.kind n = Node.Ktext
  | Item.Node n, It_comment -> Node.kind n = Node.Kcomment
  | Item.Node n, It_pi -> Node.kind n = Node.Kpi
  | Item.Atom _, (It_element _ | It_attribute _ | It_document | It_text | It_comment | It_pi)
    -> false

let matches schema (s : Item.sequence) (ty : t) : bool =
  match ty with
  | Empty_sequence -> s = []
  | Occ (ity, occ) -> (
      let all () = List.for_all (fun it -> item_matches schema it ity) s in
      match occ with
      | Exactly_one -> ( match s with [ it ] -> item_matches schema it ity | _ -> false)
      | Zero_or_one -> (
          match s with [] -> true | [ it ] -> item_matches schema it ity | _ -> false)
      | Zero_or_more -> all ()
      | One_or_more -> s <> [] && all ())

exception Type_assertion_failure of string

(* TypeAssert: identity when the sequence matches, dynamic error otherwise. *)
let assert_matches schema s ty =
  if matches schema s ty then s
  else
    raise
      (Type_assertion_failure
         (Printf.sprintf "sequence does not match required type %s" (to_string ty)))
