(** A declarative mini XML Schema substrate.

    The algebra only consumes {e type annotations}: Validate assigns them,
    TypeMatches/TypeAssert test them with derives-from, fn:data uses them
    for typed values.  A schema is therefore a set of element/attribute
    declarations plus a type-derivation relation; XSD surface syntax is
    out of scope (see DESIGN.md, Substitutions). *)

open Xqc_xml

type element_decl = {
  elem_name : string;  (** ["*"] matches any element name *)
  parent_name : string option;  (** restrict to children of this element *)
  when_attr : (string * string) option;  (** only when the attribute has this value *)
  type_name : string;  (** the assigned type annotation *)
}

type attribute_decl = {
  attr_name : string;
  owner_name : string option;
  attr_type : string;
}

type t = {
  element_decls : element_decl list;
  attribute_decls : attribute_decl list;
  derivations : (string * string) list;  (** (type, base-type) pairs *)
  simple_types : (string * Atomic.type_name) list;
}

val empty : t

val declare_element :
  ?parent:string -> ?when_attr:string * string -> name:string -> type_name:string -> t -> t
(** Add an element declaration; declarations are matched in order, first
    match wins, so put conditional declarations before catch-alls. *)

val declare_attribute : ?owner:string -> name:string -> type_name:string -> t -> t

val derive : sub:string -> base:string -> t -> t
(** Record that type [sub] derives from type [base]. *)

val bind_simple_type : name:string -> atomic:Atomic.type_name -> t -> t
(** Bind a schema type name to an atomic type for typed-value purposes. *)

val derives_from : t -> sub:string -> base:string -> bool
(** Reflexive-transitive closure of the derivation relation (plus the
    built-in integer-derives-from-decimal edge). *)

val atomic_type_of : t -> string -> Atomic.type_name option

exception Validation_error of string

val annotate : t -> Node.t -> unit
(** Assign type annotations in place across the subtree. *)

val validate : t -> Node.t -> Node.t
(** The Validate operator: deep-copy, renumber, and annotate — input
    nodes are never mutated. *)

val matching_element_decl : t -> Node.t -> element_decl option
val matching_attribute_decl : t -> string option -> string -> attribute_decl option
