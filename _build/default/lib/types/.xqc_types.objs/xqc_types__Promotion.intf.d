lib/types/promotion.mli: Atomic Item Xqc_xml
