lib/types/promotion.ml: Atomic Item List Option Xqc_xml
