lib/types/seqtype.mli: Atomic Item Schema Xqc_xml
