lib/types/schema.ml: Atomic List Node String Xqc_xml
