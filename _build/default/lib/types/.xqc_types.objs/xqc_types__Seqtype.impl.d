lib/types/seqtype.ml: Atomic Item List Node Option Printf Schema String Xqc_xml
