lib/types/schema.mli: Atomic Node Xqc_xml
