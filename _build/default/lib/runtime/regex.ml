(* A translator from the XQuery/XML Schema regular expression dialect to
   OCaml's Str syntax, covering the constructs the F&O regex functions
   (fn:matches, fn:replace, fn:tokenize) commonly use: literals,
   character classes, [.], [*], [+], [?], alternation, grouping, anchors,
   the \d \s \w escapes and their negations, and {n,m} quantifiers.

   Str uses "basic" syntax where grouping, alternation and braces are
   backslash-escaped, and has no class shorthands — both are translated
   here.  Unsupported constructs (back-references, lookaround, unicode
   categories) raise. *)

exception Unsupported of string

type t = { re : Str.regexp; source : string }

let class_of = function
  | 'd' -> "[0-9]"
  | 'D' -> "[^0-9]"
  | 's' -> "[ \t\n\r]"
  | 'S' -> "[^ \t\n\r]"
  | 'w' -> "[A-Za-z0-9_]"
  | 'W' -> "[^A-Za-z0-9_]"
  | _ -> raise Not_found

let translate (pat : string) : string =
  let buf = Buffer.create (String.length pat + 8) in
  let n = String.length pat in
  let i = ref 0 in
  let in_class = ref false in
  (* start offset (in buf) of the last complete atom, for {n,m} expansion:
     Str has no brace quantifiers, so a{2,4} becomes aaa?a? *)
  let atom_start = ref None in
  let mark_atom () = atom_start := Some (Buffer.length buf) in
  let group_start = ref [] in
  let expand_braces () =
    (* cursor is on '{'; parse {n}, {n,}, {n,m} *)
    let j = ref (!i + 1) in
    let digits k =
      let s = ref 0 and seen = ref false in
      while !k < n && pat.[!k] >= '0' && pat.[!k] <= '9' do
        s := (10 * !s) + (Char.code pat.[!k] - 48);
        seen := true;
        incr k
      done;
      if !seen then Some !s else None
    in
    match digits j with
    | None -> raise (Unsupported "malformed {n,m} quantifier")
    | Some lo ->
        let hi =
          if !j < n && pat.[!j] = ',' then (
            incr j;
            digits j)
          else Some lo
        in
        if !j >= n || pat.[!j] <> '}' then raise (Unsupported "malformed {n,m} quantifier");
        i := !j;
        let start =
          match !atom_start with
          | Some s -> s
          | None -> raise (Unsupported "{n,m} with no preceding atom")
        in
        let atom = Buffer.sub buf start (Buffer.length buf - start) in
        Buffer.truncate buf start;
        for _ = 1 to lo do
          Buffer.add_string buf atom
        done;
        (match hi with
        | Some hi ->
            if hi < lo then raise (Unsupported "{n,m} with m < n");
            for _ = 1 to hi - lo do
              Buffer.add_string buf atom;
              Buffer.add_char buf '?'
            done
        | None ->
            Buffer.add_string buf atom;
            Buffer.add_char buf '*');
        atom_start := None
  in
  while !i < n do
    let c = pat.[!i] in
    (if !in_class then (
       (* inside [...]: pass through, handle escapes and closing *)
       match c with
       | '\\' when !i + 1 < n -> (
           let e = pat.[!i + 1] in
           incr i;
           match e with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | '\\' | ']' | '[' | '-' | '^' -> Buffer.add_char buf e
           | 'd' -> Buffer.add_string buf "0-9"
           | 's' -> Buffer.add_string buf " \t\n\r"
           | 'w' -> Buffer.add_string buf "A-Za-z0-9_"
           | other -> raise (Unsupported (Printf.sprintf "\\%c in character class" other)))
       | ']' ->
           in_class := false;
           Buffer.add_char buf ']'
       | other -> Buffer.add_char buf other)
     else
       match c with
       | '\\' when !i + 1 < n -> (
           let e = pat.[!i + 1] in
           incr i;
           mark_atom ();
           match e with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'd' | 'D' | 's' | 'S' | 'w' | 'W' -> Buffer.add_string buf (class_of e)
           | '\\' | '.' | '*' | '+' | '?' | '(' | ')' | '[' | ']' | '{' | '}'
           | '|' | '^' | '$' | '-' ->
               (* literal metacharacter: Str only treats a few specially *)
               (match e with
               | '.' | '*' | '+' | '?' | '^' | '$' | '[' | ']' | '\\' ->
                   Buffer.add_char buf '\\';
                   Buffer.add_char buf e
               | other -> Buffer.add_char buf other)
           | other -> raise (Unsupported (Printf.sprintf "escape \\%c" other)))
       | '(' ->
           group_start := Buffer.length buf :: !group_start;
           Buffer.add_string buf "\\("
       | ')' ->
           (match !group_start with
           | g :: rest ->
               group_start := rest;
               atom_start := Some g
           | [] -> ());
           Buffer.add_string buf "\\)"
       | '|' -> Buffer.add_string buf "\\|"
       | '{' -> expand_braces ()
       | '}' -> Buffer.add_string buf "\\}"
       | '[' ->
           in_class := true;
           mark_atom ();
           Buffer.add_char buf '[';
           (* a leading ^ or ] passes through verbatim *)
           if !i + 1 < n && pat.[!i + 1] = '^' then (
             Buffer.add_char buf '^';
             incr i)
       | '*' | '+' | '?' | '.' | '^' | '$' ->
           if c = '.' then mark_atom ();
           Buffer.add_char buf c
       | other ->
           mark_atom ();
           Buffer.add_char buf other);
    incr i
  done;
  if !in_class then raise (Unsupported "unterminated character class");
  Buffer.contents buf

let compile (pat : string) : t = { re = Str.regexp (translate pat); source = pat }

(* fn:matches: true if the pattern matches a substring (not anchored). *)
let matches (t : t) (s : string) : bool =
  try
    ignore (Str.search_forward t.re s 0);
    true
  with Not_found -> false

(* fn:replace: replace every non-overlapping match. *)
let replace (t : t) ~(by : string) (s : string) : string =
  Str.global_replace t.re by s

(* fn:tokenize: split on matches; a leading empty token is kept when the
   string starts with a separator, per F&O. *)
let split (t : t) (s : string) : string list =
  if String.equal s "" then [ "" ] else Str.split_delim t.re s
