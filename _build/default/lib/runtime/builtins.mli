(** The built-in function library: fn: (user-visible), op: (operators
    introduced by normalization), fs: (formal-semantics helpers) and the
    clio: helper used by the Figure 1 workload query.  This module is the
    algebra context's function table — the paper notes a number of
    built-ins are required for completeness (fn:data etc.). *)

open Xqc_xml

val table : (string * (Dynamic_ctx.t -> Dynamic_ctx.xvalue list -> Dynamic_ctx.xvalue)) list

val find : string -> (Dynamic_ctx.t -> Dynamic_ctx.xvalue list -> Dynamic_ctx.xvalue) option

val names : string list
(** All registered function names (used by the coverage meta-test). *)

val deep_node_equal : Node.t -> Node.t -> bool
(** fn:deep-equal on two nodes: same kind and name, equal attribute sets,
    pairwise deep-equal children. *)

val deep_item_equal : Item.t -> Item.t -> bool
