lib/runtime/joins.mli: Atomic Hashtbl Item Promotion Xqc_types Xqc_xml
