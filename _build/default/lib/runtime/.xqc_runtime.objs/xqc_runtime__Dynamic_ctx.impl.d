lib/runtime/dynamic_ctx.ml: Hashtbl Item List Node Printf Schema Xqc_types Xqc_xml
