lib/runtime/regex.ml: Buffer Char Printf Str String
