lib/runtime/dynamic_ctx.mli: Hashtbl Item Node Schema Xqc_types Xqc_xml
