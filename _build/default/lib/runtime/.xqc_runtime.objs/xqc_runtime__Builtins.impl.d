lib/runtime/builtins.ml: Atomic Buffer Char Dynamic_ctx Float Hashtbl Item List Node Option Printf Promotion Regex String Xqc_types Xqc_xml
