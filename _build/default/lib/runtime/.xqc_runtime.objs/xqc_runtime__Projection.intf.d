lib/runtime/projection.mli: Ast Item Schema Xqc_frontend Xqc_types Xqc_xml
