lib/runtime/projection.ml: Ast Item List Node Option Seqtype String Xqc_frontend Xqc_types Xqc_xml
