lib/runtime/joins.ml: Array Atomic Float Hashtbl Item List Promotion String Xqc_types Xqc_xml
