lib/runtime/builtins.mli: Dynamic_ctx Item Node Xqc_xml
