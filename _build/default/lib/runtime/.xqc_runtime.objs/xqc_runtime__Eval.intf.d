lib/runtime/eval.mli: Algebra Ast Dynamic_ctx Item Node Xqc_algebra Xqc_compiler Xqc_frontend Xqc_types Xqc_xml
