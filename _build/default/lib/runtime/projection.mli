(** Document projection in the style of Marian & Siméon — the TreeProject
    operator of Table 1 and the engine's optional pre-evaluation pruning
    of document variables. *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type path = (Ast.axis * Ast.node_test) list

(** A projection spec: the nodes reached by [steps]; with [subtree] their
    whole subtrees are kept, otherwise only node shells (plus whatever
    other specs keep below).  Node-only specs serve counting/existence
    uses, subtree specs serve atomization and construction. *)
type spec = { steps : path; subtree : bool }

val normalize_path : path -> path
(** Collapse the XPath encoding of ["//t"] (descendant-or-self::node()
    then child::t) into one descendant step. *)

val project_specs : Schema.t -> spec list -> Item.sequence -> Item.sequence
(** Prune each node item to the union of the specs; atomic items pass
    through.  Reverse and sibling axes in specs keep nothing (the static
    analysis marks such sources unsafe instead). *)

val project : Schema.t -> path list -> Item.sequence -> Item.sequence
(** Subtree-mode wrapper: every path keeps the full subtrees it reaches. *)
