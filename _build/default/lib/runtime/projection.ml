(* Document projection in the style of Marian & Siméon (the paper's
   TreeProject operator): prune a tree to the union of a set of static
   paths.  A path is a list of (axis, node-test) steps; a node is kept if
   it lies on a prefix of some path, and the full subtree is kept where a
   path is exhausted (the "everything below" case for descendant use). *)

open Xqc_xml
open Xqc_types
open Xqc_frontend

type path = (Ast.axis * Ast.node_test) list

(* A projection spec: the nodes reached by [steps]; with [subtree] their
   whole subtrees are kept, otherwise only the node shells (plus whatever
   other specs keep below them).  Node-only specs serve counting/existence
   uses (fn:count, where-clauses), subtree specs serve atomization and
   construction. *)
type spec = { steps : path; subtree : bool }

let test_matches schema (axis : Ast.axis) (test : Ast.node_test) (n : Node.t) :
    bool =
  match test with
  | Ast.Kind_test it -> Seqtype.item_matches schema (Item.Node n) it
  | Ast.Name_test name ->
      let kind_ok =
        match axis with
        | Ast.Attribute_axis -> Node.kind n = Node.Kattribute
        | _ -> Node.kind n = Node.Kelement
      in
      kind_ok && (String.equal name "*" || Node.name n = Some name)

(* Does any node in [c]'s subtree (self included) match [test]? Used to
   prune descendant paths: a descendant step stays alive below a child
   only if the child's subtree can still produce a match. *)
let subtree_can_match schema test (c : Node.t) : bool =
  List.exists
    (fun n -> test_matches schema Ast.Child test n)
    (Node.descendant_or_self c)

(* Which specs does child [c] of a node with residual specs [specs]
   carry?  A child carries: the tail of any child-step spec whose test it
   matches, and descendant-step specs whose test is still reachable below
   it.  Exhausted node-only specs carry nothing further but make the
   node relevant (its shell is kept). *)
let specs_for_child schema (specs : spec list) (c : Node.t) : spec list option =
  let carried = ref [] in
  let relevant = ref false in
  List.iter
    (fun sp ->
      match sp.steps with
      | [] -> if sp.subtree then (relevant := true; carried := sp :: !carried)
      | (axis, test) :: rest -> (
          match axis with
          | Ast.Child ->
              if test_matches schema axis test c then (
                relevant := true;
                carried := { sp with steps = rest } :: !carried)
          | Ast.Descendant | Ast.Descendant_or_self ->
              if subtree_can_match schema test c then (
                relevant := true;
                carried := sp :: !carried);
              if test_matches schema Ast.Child test c then (
                relevant := true;
                carried := { sp with steps = rest } :: !carried)
          | Ast.Self | Ast.Attribute_axis | Ast.Parent | Ast.Ancestor
          | Ast.Ancestor_or_self | Ast.Following_sibling | Ast.Preceding_sibling ->
              ()))
    specs;
  if !relevant then Some !carried else None

(* Attributes are kept when an attribute step consumes them, or when an
   exhausted subtree spec keeps everything below the node. *)
let keep_attributes schema (specs : spec list) (n : Node.t) : bool =
  List.exists
    (fun sp ->
      match sp.steps with
      | [] -> sp.subtree
      | (Ast.Attribute_axis, test) :: _ ->
          List.exists (fun a -> test_matches schema Ast.Attribute_axis test a) (Node.attributes n)
      | _ -> false)
    specs

let rec project_node schema (specs : spec list) (n : Node.t) : Node.t option =
  let keep_all = List.exists (fun sp -> sp.steps = [] && sp.subtree) specs in
  if keep_all then Some (Node.copy n)
  else
    match n.Node.desc with
    | Node.Document d ->
        let children = List.filter_map (project_child schema specs) d.dchildren in
        Some (Node.document ?uri:d.duri children)
    | Node.Element e ->
        let attrs =
          if keep_attributes schema specs n then List.map Node.copy e.attrs else []
        in
        let children = List.filter_map (project_child schema specs) e.children in
        Some (Node.element ?annot:e.eannot e.ename ~attrs ~children)
    | Node.Attribute _ | Node.Text _ | Node.Comment _ | Node.Pi _ ->
        Some (Node.copy n)

and project_child schema specs c =
  match specs_for_child schema specs c with
  | None -> None
  | Some carried -> (
      match (carried, c.Node.desc) with
      | [], (Node.Text _ | Node.Comment _ | Node.Pi _) ->
          (* shell-only relevance never keeps character data *)
          None
      | _ -> project_node schema carried c)

(* Collapse the XPath encoding of "//t" (descendant-or-self::node()
   followed by child::t) into a single descendant step, which is the form
   the reachability pruning understands. *)
let rec normalize_path (p : path) : path =
  match p with
  | (Ast.Descendant_or_self, Ast.Kind_test Seqtype.It_node) :: (Ast.Child, t) :: rest ->
      (Ast.Descendant, t) :: normalize_path rest
  | step :: rest -> step :: normalize_path rest
  | [] -> []

let project_specs schema (specs : spec list) (items : Item.sequence) : Item.sequence =
  let specs = List.map (fun sp -> { sp with steps = normalize_path sp.steps }) specs in
  List.filter_map
    (fun it ->
      match it with
      | Item.Node n ->
          Option.map
            (fun m ->
              Node.renumber m;
              Item.Node m)
            (project_node schema specs n)
      | Item.Atom _ -> Some it)
    items

(* Subtree-mode wrapper (the TreeProject operator of Table 1). *)
let project schema (paths : path list) (items : Item.sequence) : Item.sequence =
  project_specs schema (List.map (fun steps -> { steps; subtree = true }) paths) items
