lib/algebra/algebra.mli: Ast Atomic Promotion Seqtype Xqc_frontend Xqc_types Xqc_xml
