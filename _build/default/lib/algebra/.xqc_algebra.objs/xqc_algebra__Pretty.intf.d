lib/algebra/pretty.mli: Algebra Format
