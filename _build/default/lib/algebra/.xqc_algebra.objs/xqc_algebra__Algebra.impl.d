lib/algebra/algebra.ml: Ast Atomic List Promotion Seqtype Xqc_frontend Xqc_types Xqc_xml
