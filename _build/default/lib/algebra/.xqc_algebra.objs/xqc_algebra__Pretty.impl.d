lib/algebra/pretty.ml: Algebra Ast Atomic Format List Printf Promotion Seqtype String Xqc_frontend Xqc_types Xqc_xml
