lib/frontend/xq_parser.mli: Ast
