lib/frontend/core_ast.ml: Ast Atomic Format List Seqtype Xqc_types Xqc_xml
