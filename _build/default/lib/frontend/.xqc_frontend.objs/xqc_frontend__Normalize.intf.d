lib/frontend/normalize.mli: Ast Core_ast
