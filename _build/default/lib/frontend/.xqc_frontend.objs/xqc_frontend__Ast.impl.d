lib/frontend/ast.ml: Atomic Seqtype Xqc_types Xqc_xml
