lib/frontend/xq_parser.ml: Ast Atomic Buffer List Option Printf Seqtype String Xml_parser Xqc_types Xqc_xml
