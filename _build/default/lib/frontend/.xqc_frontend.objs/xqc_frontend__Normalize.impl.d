lib/frontend/normalize.ml: Ast Atomic Core_ast List Printf String Xq_parser Xqc_xml
