(* The XQuery Core: the normalized expression language that the algebraic
   compiler consumes (Section 4 of the paper).

   Differences from the W3C Core, following the paper: FLWOR expressions
   are kept as whole blocks (not decomposed into single for/let bindings),
   so that order-by has a tuple stream to act on and tuple operators can be
   introduced directly; typeswitch uses one common variable across all
   branches; path steps appear as the set-at-a-time TreeJoin form.

   All variables are alpha-renamed to unique names during normalization so
   that tuple fields in the algebra never collide. *)

open Xqc_xml
open Xqc_types

type cexpr =
  | C_empty
  | C_scalar of Atomic.t
  | C_seq of cexpr * cexpr
  | C_var of string
  | C_elem of string * cexpr
  | C_attr of string * cexpr
  | C_text of cexpr
  | C_comment of cexpr
  | C_pi of string * cexpr
  | C_if of cexpr * cexpr * cexpr
  | C_flwor of cclause list * corder list * cexpr
  | C_quant of Ast.quantifier * string * cexpr * cexpr
  | C_typeswitch of string * cexpr * (Seqtype.t * cexpr) list * cexpr
      (** typeswitch x := e; (type, branch)...; default branch *)
  | C_call of string * cexpr list
  | C_treejoin of Ast.axis * Ast.node_test * cexpr
  | C_instance_of of cexpr * Seqtype.t
  | C_typeassert of cexpr * Seqtype.t
  | C_cast of cexpr * Atomic.type_name * bool
  | C_castable of cexpr * Atomic.type_name * bool
  | C_validate of cexpr

and cclause =
  | CC_for of { var : string; at_var : string option; astype : Seqtype.t option; source : cexpr }
  | CC_let of { var : string; astype : Seqtype.t option; value : cexpr }
  | CC_where of cexpr

and corder = { ckey : cexpr; cdir : Ast.sort_dir; cempty : Ast.empty_order }

type cfunction = {
  cf_name : string;
  cf_params : (string * Seqtype.t option) list;
  cf_return : Seqtype.t option;
  cf_body : cexpr;
}

type cquery = {
  cq_functions : cfunction list;
  cq_globals : (string * cexpr) list;  (** declare variable, in order *)
  cq_main : cexpr;
}

(* Free variables, needed by the compiler to decide whether a sub-plan is
   independent of the input tuple (the "independent of IN" side conditions
   in the rewritings of Figure 5). *)
let rec free_vars (e : cexpr) : string list =
  let ( @. ) a b = List.rev_append a b in
  match e with
  | C_empty | C_scalar _ -> []
  | C_var v -> [ v ]
  | C_seq (a, b) -> free_vars a @. free_vars b
  | C_elem (_, c) | C_attr (_, c) | C_text c | C_comment c | C_pi (_, c) -> free_vars c
  | C_if (a, b, c) -> free_vars a @. free_vars b @. free_vars c
  | C_flwor (clauses, orders, ret) ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) clause ->
            match clause with
            | CC_for { var; at_var; source; _ } ->
                let fv = List.filter (fun v -> not (List.mem v bound)) (free_vars source) in
                let bound = var :: (match at_var with Some a -> a :: bound | None -> bound) in
                (bound, fv @. acc)
            | CC_let { var; value; _ } ->
                let fv = List.filter (fun v -> not (List.mem v bound)) (free_vars value) in
                (var :: bound, fv @. acc)
            | CC_where w ->
                let fv = List.filter (fun v -> not (List.mem v bound)) (free_vars w) in
                (bound, fv @. acc))
          ([], []) clauses
      in
      let in_ret =
        List.filter (fun v -> not (List.mem v bound))
          (List.concat_map (fun o -> free_vars o.ckey) orders @ free_vars ret)
      in
      in_ret @. acc
  | C_quant (_, v, source, body) ->
      free_vars source @. List.filter (fun x -> x <> v) (free_vars body)
  | C_typeswitch (v, scrut, cases, default) ->
      free_vars scrut
      @. List.filter (fun x -> x <> v)
           (List.concat_map (fun (_, b) -> free_vars b) cases @ free_vars default)
  | C_call (_, args) -> List.concat_map free_vars args
  | C_treejoin (_, _, input) -> free_vars input
  | C_instance_of (c, _) | C_typeassert (c, _) | C_cast (c, _, _)
  | C_castable (c, _, _) | C_validate c ->
      free_vars c

(* A compact printer for Core expressions, used in tests and --explain. *)
let rec pp ppf (e : cexpr) =
  let open Format in
  match e with
  | C_empty -> fprintf ppf "()"
  | C_scalar a -> Atomic.pp ppf a
  | C_var v -> fprintf ppf "$%s" v
  | C_seq (a, b) -> fprintf ppf "(%a, %a)" pp a pp b
  | C_elem (n, c) -> fprintf ppf "element %s {%a}" n pp c
  | C_attr (n, c) -> fprintf ppf "attribute %s {%a}" n pp c
  | C_text c -> fprintf ppf "text {%a}" pp c
  | C_comment c -> fprintf ppf "comment {%a}" pp c
  | C_pi (t, c) -> fprintf ppf "pi %s {%a}" t pp c
  | C_if (c, t, e) -> fprintf ppf "if (%a) then %a else %a" pp c pp t pp e
  | C_flwor (clauses, orders, ret) ->
      List.iter
        (function
          | CC_for { var; at_var; source; _ } ->
              fprintf ppf "for $%s%s in %a " var
                (match at_var with Some a -> " at $" ^ a | None -> "")
                pp source
          | CC_let { var; value; _ } -> fprintf ppf "let $%s := %a " var pp value
          | CC_where w -> fprintf ppf "where %a " pp w)
        clauses;
      if orders <> [] then (
        fprintf ppf "order by ";
        List.iteri
          (fun i o ->
            if i > 0 then fprintf ppf ", ";
            fprintf ppf "%a%s" pp o.ckey
              (match o.cdir with Ast.Ascending -> "" | Ast.Descending -> " descending"))
          orders;
        fprintf ppf " ");
      fprintf ppf "return %a" pp ret
  | C_quant (q, v, s, b) ->
      fprintf ppf "%s $%s in %a satisfies %a"
        (match q with Ast.Some_quant -> "some" | Ast.Every_quant -> "every")
        v pp s pp b
  | C_typeswitch (v, scrut, cases, default) ->
      fprintf ppf "typeswitch $%s := %a" v pp scrut;
      List.iter
        (fun (ty, b) -> fprintf ppf " case %s return %a" (Seqtype.to_string ty) pp b)
        cases;
      fprintf ppf " default return %a" pp default
  | C_call (f, args) ->
      fprintf ppf "%s(%a)" f
        (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp)
        args
  | C_treejoin (axis, test, input) ->
      fprintf ppf "%a/%s::%s" pp input (Ast.axis_to_string axis)
        (Ast.node_test_to_string test)
  | C_instance_of (c, ty) -> fprintf ppf "(%a instance of %s)" pp c (Seqtype.to_string ty)
  | C_typeassert (c, ty) -> fprintf ppf "(%a treat as %s)" pp c (Seqtype.to_string ty)
  | C_cast (c, tn, _) ->
      fprintf ppf "(%a cast as %s)" pp c (Atomic.type_name_to_string tn)
  | C_castable (c, tn, _) ->
      fprintf ppf "(%a castable as %s)" pp c (Atomic.type_name_to_string tn)
  | C_validate c -> fprintf ppf "validate {%a}" pp c

let to_string e = Format.asprintf "%a" pp e
