(** The Saxon stand-in: the Core interpreter with an automatic hash index
    over equality where-clauses.

    When a FLWOR prefix has the shape [for $v in SOURCE where
    general-eq(L, R) ...] with SOURCE loop-invariant and one comparison
    side depending on [$v] alone, SOURCE is materialized once and indexed
    with the same typed (value, type) scheme as the Section 6 hash join,
    turning the nested loop into a probe — the property the paper
    observes of Saxon 8.1.1 ("its execution time does not blow up even
    for the 6-way join") without any algebraic compilation. *)

open Xqc_xml
open Xqc_frontend
open Xqc_runtime

val split_equality :
  string -> Core_ast.cexpr -> (Core_ast.cexpr * Core_ast.cexpr) option
(** [split_equality v where] decomposes an equality where-clause into
    (outer side, inner side) where the inner side depends on [v] and the
    outer side does not; [None] when the clause is not such an equality. *)

val make_hooks : unit -> Interp.hooks
(** Fresh hooks with an empty per-run index cache. *)

val run : Dynamic_ctx.t -> Core_ast.cquery -> Item.sequence

val install_query : Dynamic_ctx.t -> Core_ast.cquery -> Dynamic_ctx.t -> Item.sequence
