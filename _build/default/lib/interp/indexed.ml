(* The Saxon stand-in: the direct Core interpreter of interp.ml augmented
   with an automatic hash index over equality where-clauses.

   When a FLWOR prefix has the shape

     for $v in SOURCE where general-eq(L, R) ...

   with SOURCE loop-invariant (its free variables are not bound in the
   current dynamic environment) and with one comparison side depending on
   $v alone, the interpreter materializes SOURCE once, indexes it on the
   $v-side key with the same typed (value, type) scheme as the Section 6
   hash join, and probes it with the other side — turning the O(n·m)
   nested loop into O(n+m) without any algebraic compilation.  This gives
   the engine the property the paper observes of Saxon 8.1.1: "its
   execution time does not blow up even for the 6-way join", while still
   paying the interpretive overheads the algebra removes. *)

open Xqc_xml
open Xqc_frontend
open Xqc_runtime
open Core_ast

(* Decompose a where clause into an equality with a side depending only on
   [v] and a side not mentioning [v]. *)
let split_equality (v : string) (w : cexpr) : (cexpr * cexpr) option =
  let w = match w with C_call ("fn:boolean", [ inner ]) -> inner | other -> other in
  match w with
  | C_call ("op:general-eq", [ l; r ]) ->
      let fl = free_vars l and fr = free_vars r in
      if List.mem v fr && not (List.mem v fl) then Some (l, r)
      else if List.mem v fl && not (List.mem v fr) then Some (r, l)
      else None
  | _ -> None

type index = { ix_items : Item.sequence; ix_hash : Joins.hash_index }

let make_hooks () : Interp.hooks =
  (* cache of materialized indexes, keyed structurally by (source, key
     expression); entries are built once per query run because sources are
     required to be loop-invariant *)
  let cache : (cexpr * cexpr, index) Hashtbl.t = Hashtbl.create 8 in
  let try_for_where h ctx (env : Interp.env) clauses k =
    match clauses with
    | CC_for { var; at_var = None; astype = None; source }
      :: CC_where w
      :: rest -> (
        match split_equality var w with
        | None -> None
        | Some (outer_side, inner_side) ->
            let bound v = List.mem_assoc v env in
            let source_invariant = not (List.exists bound (free_vars source)) in
            let inner_self_contained =
              List.for_all
                (fun x -> String.equal x var || not (bound x))
                (free_vars inner_side)
            in
            if not (source_invariant && inner_self_contained) then None
            else
              let index =
                match Hashtbl.find_opt cache (source, inner_side) with
                | Some ix -> ix
                | None ->
                    let items = Interp.eval h ctx env source in
                    let tuples = List.map (fun it -> [| [ it ] |]) items in
                    let hash =
                      Joins.build_hash_index tuples (fun t ->
                          Interp.eval h ctx [ (var, t.(0)) ] inner_side)
                    in
                    let ix = { ix_items = items; ix_hash = hash } in
                    Hashtbl.replace cache (source, inner_side) ix;
                    ix
              in
              let keys = Item.atomize (Interp.eval h ctx env outer_side) in
              let matches = Joins.probe_hash_index index.ix_hash keys in
              Some
                (List.concat_map
                   (fun t ->
                     Interp.run_clauses h ctx ((var, t.(0)) :: env) rest k)
                   matches))
    | _ -> None
  in
  { Interp.try_for_where = Some try_for_where }

let run ctx (q : cquery) : Item.sequence = Interp.run ~hooks:(make_hooks ()) ctx q

let install_query ctx (q : cquery) = Interp.install_query ~hooks:(make_hooks ()) ctx q
