(** Direct interpretation of the XQuery Core AST.

    The paper's "No algebra" baseline (Table 3): the pre-paper Galax
    evaluated the normalized AST directly with dynamic environments.
    This interpreter is also the executable specification against which
    the algebraic engine is property-tested. *)

open Xqc_xml
open Xqc_frontend
open Xqc_runtime

type env = (string * Item.sequence) list

(** Extension hook used by the indexed variant ({!Indexed}) to
    short-circuit joinable for/where clause pairs; [None] in the naive
    interpreter. *)
type hooks = {
  try_for_where :
    (hooks -> Dynamic_ctx.t -> env -> Core_ast.cclause list ->
     (env -> Item.sequence) -> Item.sequence option)
    option;
}

val naive_hooks : hooks

val eval : hooks -> Dynamic_ctx.t -> env -> Core_ast.cexpr -> Item.sequence

val run_clauses :
  hooks -> Dynamic_ctx.t -> env -> Core_ast.cclause list ->
  (env -> Item.sequence) -> Item.sequence
(** Evaluate FLWOR clauses, calling the continuation once per complete
    binding, concatenating the results. *)

val install_query :
  ?hooks:hooks -> Dynamic_ctx.t -> Core_ast.cquery -> Dynamic_ctx.t -> Item.sequence
(** Register the query's functions in the context and return a runner
    that evaluates globals then the main expression. *)

val run : ?hooks:hooks -> Dynamic_ctx.t -> Core_ast.cquery -> Item.sequence
