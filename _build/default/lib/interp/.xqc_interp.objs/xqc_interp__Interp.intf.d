lib/interp/interp.mli: Core_ast Dynamic_ctx Item Xqc_frontend Xqc_runtime Xqc_xml
