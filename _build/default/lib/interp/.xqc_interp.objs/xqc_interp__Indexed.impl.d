lib/interp/indexed.ml: Array Core_ast Hashtbl Interp Item Joins List String Xqc_frontend Xqc_runtime Xqc_xml
