lib/interp/indexed.mli: Core_ast Dynamic_ctx Interp Item Xqc_frontend Xqc_runtime Xqc_xml
