lib/interp/interp.ml: Ast Atomic Builtins Core_ast Dynamic_ctx Eval Hashtbl Item List Node Promotion Schema Seqtype String Xqc_frontend Xqc_runtime Xqc_types Xqc_xml
