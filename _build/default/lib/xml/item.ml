(* Items and item sequences — the XML half of the paper's data model.

   A value in the logical data model is an ordered sequence of items; an
   item is an atomic value or a node.  Sequences are ordinary OCaml lists:
   the algebra treats them as holistic values (the paper's key departure
   from tuple-of-singleton encodings). *)

type t = Atom of Atomic.t | Node of Node.t

type sequence = t list

let atom a = Atom a
let node n = Node n

let of_int i = Atom (Atomic.Integer i)
let of_string s = Atom (Atomic.String s)
let of_bool b = Atom (Atomic.Boolean b)
let of_double f = Atom (Atomic.Double f)

let is_node = function Node _ -> true | Atom _ -> false
let is_atom = function Atom _ -> true | Node _ -> false

(* fn:data on one item. *)
let data = function Atom a -> a | Node n -> Node.typed_value n

(* fn:string on one item. *)
let string_value = function
  | Atom a -> Atomic.to_string a
  | Node n -> Node.string_value n

(* Effective boolean value of a sequence (fn:boolean), per XPath 2.0:
   empty -> false; first item a node -> true; singleton atomic -> by type;
   anything else is a type error, reported as [Atomic.Cast_error]. *)
let effective_boolean_value (s : sequence) : bool =
  match s with
  | [] -> false
  | Node _ :: _ -> true
  | [ Atom (Atomic.Boolean b) ] -> b
  | [ Atom (Atomic.String v) ] | [ Atom (Atomic.Untyped v) ] | [ Atom (Atomic.Any_uri v) ]
    -> String.length v > 0
  | [ Atom (Atomic.Integer i) ] -> i <> 0
  | [ Atom (Atomic.Decimal f) ] | [ Atom (Atomic.Float f) ] | [ Atom (Atomic.Double f) ]
    -> f <> 0.0 && not (Float.is_nan f)
  | [ Atom (Atomic.Qname _) ] | [ Atom (Atomic.Other _) ] ->
      Atomic.cast_error "invalid argument to fn:boolean"
  | Atom _ :: _ :: _ ->
      Atomic.cast_error "fn:boolean on a sequence of more than one atomic value"

(* fn:data over a sequence: atomization. *)
let atomize (s : sequence) : Atomic.t list = List.map data s

let pp ppf = function
  | Atom a -> Atomic.pp ppf a
  | Node n ->
      Format.fprintf ppf "%s(%s)"
        (Node.kind_name (Node.kind n))
        (match Node.name n with Some q -> q | None -> "")

let pp_sequence ppf s =
  Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp) s
