(** Items and item sequences — the XML half of the paper's data model.

    A value in the logical data model is an ordered sequence of items; an
    item is an atomic value or a node.  The algebra treats sequences as
    holistic values (the paper's key departure from encodings that break
    sequences into singleton tuples). *)

type t = Atom of Atomic.t | Node of Node.t

type sequence = t list

(** {1 Constructors} *)

val atom : Atomic.t -> t
val node : Node.t -> t
val of_int : int -> t
val of_string : string -> t
val of_bool : bool -> t
val of_double : float -> t

(** {1 Observation} *)

val is_node : t -> bool
val is_atom : t -> bool

val data : t -> Atomic.t
(** fn:data on one item: identity on atoms, typed value on nodes. *)

val string_value : t -> string
(** fn:string on one item. *)

val atomize : sequence -> Atomic.t list
(** fn:data over a sequence. *)

val effective_boolean_value : sequence -> bool
(** fn:boolean per XPath 2.0: empty is false, a sequence starting with a
    node is true, a singleton atomic by its type.
    @raise Atomic.Cast_error on sequences with no effective boolean
    value. *)

val pp : Format.formatter -> t -> unit
val pp_sequence : Format.formatter -> sequence -> unit
