(** XML serialization (the Serialize operator of Table 1).

    Sequences serialize per the XQuery serialization rules: adjacent
    atomic values are separated by a single space, nodes become markup,
    text and attribute content is escaped. *)

val node_to_string : Node.t -> string

val sequence_to_string : Item.sequence -> string

val sequence_to_file : string -> Item.sequence -> unit

val node_to_string_indented : Node.t -> string
(** Two-space indented rendering; elements with text children stay on one
    line so the value is unchanged modulo ignorable whitespace. *)

val sequence_to_string_indented : Item.sequence -> string

val escape_text : Buffer.t -> string -> unit
val escape_attr : Buffer.t -> string -> unit
val add_node : Buffer.t -> Node.t -> unit
