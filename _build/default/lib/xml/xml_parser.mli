(** A small, fast, non-validating XML parser.

    Supports elements, attributes, character data with the five predefined
    entities and numeric character references, comments, processing
    instructions, CDATA sections and an optional XML declaration.
    Namespace declarations are kept as plain attributes; DTD internal
    subsets are skipped.  One pass, O(n). *)

exception Parse_error of { position : int; message : string }

val parse_string : ?uri:string -> string -> Node.t
(** Parse a complete document.  The returned document node has ids in
    document order.
    @raise Parse_error on malformed input (position is a byte offset). *)

val parse_file : string -> Node.t

(** {1 Internals used by the XQuery lexer}

    The XQuery parser reuses the entity decoder for string literals and
    constructor content. *)

type state = { src : string; mutable pos : int; len : int }

val decode_entity : state -> string
(** Decode one entity or character reference at the cursor (positioned on
    ['&']), advancing past the [';']. *)
