(* Atomic values of the XQuery data model.

   The paper's join algorithm (Section 6) relies on the XML Schema primitive
   type lattice: untyped values convert to the type of the other operand
   (Table 2), and numeric values promote along integer -> decimal -> float ->
   double.  We model the numeric tower with dedicated constructors and carry
   the remaining primitive types (dates, binaries, ...) as lexical forms
   tagged with their type name, which is sufficient because none of the
   paper's workloads perform arithmetic on them. *)

type type_name =
  | T_untyped
  | T_string
  | T_boolean
  | T_integer
  | T_decimal
  | T_float
  | T_double
  | T_any_uri
  | T_qname
  | T_date
  | T_time
  | T_date_time
  | T_duration
  | T_g_year
  | T_g_month
  | T_g_day
  | T_g_year_month
  | T_g_month_day
  | T_hex_binary
  | T_base64_binary
  | T_notation

type t =
  | Untyped of string
  | String of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Float of float
  | Double of float
  | Any_uri of string
  | Qname of string
  | Other of type_name * string

let type_of = function
  | Untyped _ -> T_untyped
  | String _ -> T_string
  | Boolean _ -> T_boolean
  | Integer _ -> T_integer
  | Decimal _ -> T_decimal
  | Float _ -> T_float
  | Double _ -> T_double
  | Any_uri _ -> T_any_uri
  | Qname _ -> T_qname
  | Other (tn, _) -> tn

let type_name_to_string = function
  | T_untyped -> "xdt:untypedAtomic"
  | T_string -> "xs:string"
  | T_boolean -> "xs:boolean"
  | T_integer -> "xs:integer"
  | T_decimal -> "xs:decimal"
  | T_float -> "xs:float"
  | T_double -> "xs:double"
  | T_any_uri -> "xs:anyURI"
  | T_qname -> "xs:QName"
  | T_date -> "xs:date"
  | T_time -> "xs:time"
  | T_date_time -> "xs:dateTime"
  | T_duration -> "xs:duration"
  | T_g_year -> "xs:gYear"
  | T_g_month -> "xs:gMonth"
  | T_g_day -> "xs:gDay"
  | T_g_year_month -> "xs:gYearMonth"
  | T_g_month_day -> "xs:gMonthDay"
  | T_hex_binary -> "xs:hexBinary"
  | T_base64_binary -> "xs:base64Binary"
  | T_notation -> "xs:NOTATION"

let type_name_of_string = function
  | "xdt:untypedAtomic" | "untypedAtomic" -> Some T_untyped
  | "xs:string" | "string" -> Some T_string
  | "xs:boolean" | "boolean" -> Some T_boolean
  | "xs:integer" | "integer" | "xs:int" | "xs:long" -> Some T_integer
  | "xs:decimal" | "decimal" -> Some T_decimal
  | "xs:float" | "float" -> Some T_float
  | "xs:double" | "double" -> Some T_double
  | "xs:anyURI" | "anyURI" -> Some T_any_uri
  | "xs:QName" | "QName" -> Some T_qname
  | "xs:date" | "date" -> Some T_date
  | "xs:time" | "time" -> Some T_time
  | "xs:dateTime" | "dateTime" -> Some T_date_time
  | "xs:duration" | "duration" -> Some T_duration
  | "xs:gYear" -> Some T_g_year
  | "xs:gMonth" -> Some T_g_month
  | "xs:gDay" -> Some T_g_day
  | "xs:gYearMonth" -> Some T_g_year_month
  | "xs:gMonthDay" -> Some T_g_month_day
  | "xs:hexBinary" -> Some T_hex_binary
  | "xs:base64Binary" -> Some T_base64_binary
  | "xs:NOTATION" -> Some T_notation
  | _ -> None

let is_numeric_type = function
  | T_integer | T_decimal | T_float | T_double -> true
  | T_untyped | T_string | T_boolean | T_any_uri | T_qname | T_date | T_time
  | T_date_time | T_duration | T_g_year | T_g_month | T_g_day | T_g_year_month
  | T_g_month_day | T_hex_binary | T_base64_binary | T_notation -> false

let is_numeric a = is_numeric_type (type_of a)

(* Canonical lexical form, following the XQuery serialization rules closely
   enough for the test suites (integers without a decimal point, booleans as
   true/false, doubles trimmed of a trailing dot-zero). *)
let float_to_lexical f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* 12.0 prints as "12" per the XPath canonical form for whole numbers *)
    Printf.sprintf "%.0f" f
  else if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else
    let s = Printf.sprintf "%.12g" f in
    s

let to_string = function
  | Untyped s | String s | Any_uri s | Qname s | Other (_, s) -> s
  | Boolean b -> if b then "true" else "false"
  | Integer i -> string_of_int i
  | Decimal f | Float f | Double f -> float_to_lexical f

(* Numeric view used by arithmetic and by the sort join. *)
let to_float = function
  | Integer i -> Some (float_of_int i)
  | Decimal f | Float f | Double f -> Some f
  | Untyped s | String s -> float_of_string_opt (String.trim s)
  | Boolean _ | Any_uri _ | Qname _ | Other _ -> None

exception Cast_error of string

let cast_error fmt = Printf.ksprintf (fun s -> raise (Cast_error s)) fmt

(* Casting between atomic types, as used by the Cast operator and by
   fs:convert-operand.  Unsupported combinations raise [Cast_error], which
   the runtime maps to an XQuery dynamic error. *)
let cast (target : type_name) (a : t) : t =
  let lexical = to_string a in
  let num_of s =
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> cast_error "cannot cast %S to a numeric type" s
  in
  match target with
  | T_untyped -> Untyped lexical
  | T_string -> String lexical
  | T_any_uri -> Any_uri (String.trim lexical)
  | T_qname -> Qname (String.trim lexical)
  | T_boolean -> (
      match a with
      | Boolean b -> Boolean b
      | Integer i -> Boolean (i <> 0)
      | Decimal f | Float f | Double f -> Boolean (f <> 0.0 && not (Float.is_nan f))
      | Untyped s | String s -> (
          match String.trim s with
          | "true" | "1" -> Boolean true
          | "false" | "0" -> Boolean false
          | other -> cast_error "cannot cast %S to xs:boolean" other)
      | Any_uri _ | Qname _ | Other _ ->
          cast_error "cannot cast %s to xs:boolean"
            (type_name_to_string (type_of a)))
  | T_integer -> (
      match a with
      | Integer i -> Integer i
      | Decimal f | Float f | Double f -> Integer (int_of_float f)
      | Boolean b -> Integer (if b then 1 else 0)
      | Untyped s | String s -> (
          let s = String.trim s in
          match int_of_string_opt s with
          | Some i -> Integer i
          | None -> (
              (* "42.0" casts to integer via decimal in XQuery *)
              match float_of_string_opt s with
              | Some f when Float.is_integer f -> Integer (int_of_float f)
              | Some _ | None -> cast_error "cannot cast %S to xs:integer" s))
      | Any_uri _ | Qname _ | Other _ ->
          cast_error "cannot cast %s to xs:integer"
            (type_name_to_string (type_of a)))
  | T_decimal -> (
      match a with
      | Boolean b -> Decimal (if b then 1.0 else 0.0)
      | _ -> Decimal (num_of lexical))
  | T_float -> (
      match a with
      | Boolean b -> Float (if b then 1.0 else 0.0)
      | _ -> Float (num_of lexical))
  | T_double -> (
      match a with
      | Boolean b -> Double (if b then 1.0 else 0.0)
      | _ -> Double (num_of lexical))
  | T_date | T_time | T_date_time | T_duration | T_g_year | T_g_month | T_g_day
  | T_g_year_month | T_g_month_day | T_hex_binary | T_base64_binary
  | T_notation ->
      Other (target, String.trim lexical)

let castable target a =
  match cast target a with _ -> true | exception Cast_error _ -> false

(* Value equality between two atomics of the *same* comparison type, i.e.
   after fs:convert-operand has been applied.  op:equal in the paper. *)
let equal_same_type (a : t) (b : t) : bool =
  match (a, b) with
  | Integer x, Integer y -> x = y
  | (Integer _ | Decimal _ | Float _ | Double _), (Integer _ | Decimal _ | Float _ | Double _)
    -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> x = y
      | (None | Some _), _ -> false)
  | Boolean x, Boolean y -> x = y
  | (String x | Untyped x | Any_uri x | Qname x), (String y | Untyped y | Any_uri y | Qname y)
    -> String.equal x y
  | Other (t1, x), Other (t2, y) -> t1 = t2 && String.equal x y
  | ( ( Untyped _ | String _ | Boolean _ | Integer _ | Decimal _ | Float _
      | Double _ | Any_uri _ | Qname _ | Other _ ),
      _ ) ->
      false

(* Ordering between two atomics of the same comparison type; used by
   OrderBy and the sort join.  Raises [Cast_error] for incomparable types. *)
let compare_same_type (a : t) (b : t) : int =
  match (a, b) with
  | Integer x, Integer y -> compare x y
  | (Integer _ | Decimal _ | Float _ | Double _), (Integer _ | Decimal _ | Float _ | Double _)
    -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> Float.compare x y
      | (None | Some _), _ -> cast_error "incomparable numeric values")
  | Boolean x, Boolean y -> compare x y
  | (String x | Untyped x | Any_uri x), (String y | Untyped y | Any_uri y) ->
      String.compare x y
  | Other (t1, x), Other (t2, y) when t1 = t2 -> String.compare x y
  | ( ( Untyped _ | String _ | Boolean _ | Integer _ | Decimal _ | Float _
      | Double _ | Any_uri _ | Qname _ | Other _ ),
      _ ) ->
      cast_error "cannot compare %s with %s"
        (type_name_to_string (type_of a))
        (type_name_to_string (type_of b))

let pp ppf a =
  Format.fprintf ppf "%s(%s)" (type_name_to_string (type_of a)) (to_string a)
