(** Atomic values of the XQuery data model.

    The numeric tower (integer < decimal < float < double) is modeled with
    dedicated constructors; the remaining XML Schema primitive types
    (calendar and binary types) are carried as lexical forms tagged with
    their type name, which suffices because no workload in this repository
    performs arithmetic on them. *)

(** Names of the modeled atomic types: xdt:untypedAtomic plus the XML
    Schema primitive types (with xs:integer standing in for the integer
    branch of the decimal hierarchy). *)
type type_name =
  | T_untyped
  | T_string
  | T_boolean
  | T_integer
  | T_decimal
  | T_float
  | T_double
  | T_any_uri
  | T_qname
  | T_date
  | T_time
  | T_date_time
  | T_duration
  | T_g_year
  | T_g_month
  | T_g_day
  | T_g_year_month
  | T_g_month_day
  | T_hex_binary
  | T_base64_binary
  | T_notation

(** An atomic value.  [Untyped] is character data that has not been
    validated; [Other] carries the lexical form of a calendar/binary/
    NOTATION value. *)
type t =
  | Untyped of string
  | String of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Float of float
  | Double of float
  | Any_uri of string
  | Qname of string
  | Other of type_name * string

val type_of : t -> type_name
(** The dynamic type of a value. *)

val type_name_to_string : type_name -> string
(** The prefixed QName of the type, e.g. ["xs:integer"]. *)

val type_name_of_string : string -> type_name option
(** Inverse of {!type_name_to_string}; also accepts unprefixed names. *)

val is_numeric_type : type_name -> bool
(** Is the type in the numeric tower (integer/decimal/float/double)? *)

val is_numeric : t -> bool

val to_string : t -> string
(** The canonical lexical form (fn:string): integers without a decimal
    point, whole doubles without a fraction, [NaN]/[INF]/[-INF]. *)

val float_to_lexical : float -> string

val to_float : t -> float option
(** Numeric view: numeric values directly, strings and untyped values by
    parsing; [None] when no numeric reading exists. *)

exception Cast_error of string
(** Raised by {!cast} and the comparison functions on dynamic type
    errors; the runtime maps it to an XQuery dynamic error. *)

val cast_error : ('a, unit, string, 'b) format4 -> 'a
(** [cast_error fmt ...] raises {!Cast_error} with a formatted message. *)

val cast : type_name -> t -> t
(** [cast target v] converts [v] to the target type per the XQuery
    casting rules (via the lexical form for string-ish sources).
    @raise Cast_error when the conversion is not allowed or the lexical
    form does not parse. *)

val castable : type_name -> t -> bool
(** Does {!cast} succeed? *)

val equal_same_type : t -> t -> bool
(** Value equality between two atomics already brought to a common
    comparison type by fs:convert-operand — the paper's [op:equal].
    NaN is unequal to everything, including itself. *)

val compare_same_type : t -> t -> int
(** Three-way ordering between two atomics of a common comparison type.
    @raise Cast_error on incomparable types (e.g. string vs boolean). *)

val pp : Format.formatter -> t -> unit
