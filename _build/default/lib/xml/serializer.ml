(* XML serialization (the Serialize operator of Table 1) and sequence
   serialization per the XQuery serialization rules: adjacent atomic values
   are separated by a single space; nodes serialize as markup. *)

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | other -> Buffer.add_char buf other)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | other -> Buffer.add_char buf other)
    s

let rec add_node buf (n : Node.t) =
  match n.Node.desc with
  | Node.Document d -> List.iter (add_node buf) d.dchildren
  | Node.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.ename;
      List.iter
        (fun a ->
          match a.Node.desc with
          | Node.Attribute at ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf at.aname;
              Buffer.add_string buf "=\"";
              escape_attr buf at.avalue;
              Buffer.add_char buf '"'
          | Node.Document _ | Node.Element _ | Node.Text _ | Node.Comment _
          | Node.Pi _ ->
              ())
        e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else (
        Buffer.add_char buf '>';
        List.iter (add_node buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.ename;
        Buffer.add_char buf '>')
  | Node.Attribute a ->
      (* A top-level attribute serializes as name="value" (non-standard but
         useful for debugging output). *)
      Buffer.add_string buf a.aname;
      Buffer.add_string buf "=\"";
      escape_attr buf a.avalue;
      Buffer.add_char buf '"'
  | Node.Text s -> escape_text buf s
  | Node.Comment s ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Node.Pi p ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf p.target;
      Buffer.add_char buf ' ';
      Buffer.add_string buf p.pdata;
      Buffer.add_string buf "?>"

let node_to_string n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

(* Indented serialization for human consumption.  Eliding whitespace is
   only safe around element-only content, so an element with any text
   child is emitted on one line. *)
let rec add_node_indented buf depth (n : Node.t) =
  let pad () = Buffer.add_string buf (String.make (2 * depth) ' ') in
  match n.Node.desc with
  | Node.Document d ->
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf '\n';
          add_node_indented buf depth c)
        d.dchildren
  | Node.Element e ->
      let mixed =
        List.exists
          (fun c -> match c.Node.desc with Node.Text _ -> true | _ -> false)
          e.children
      in
      pad ();
      if mixed || e.children = [] then add_node buf n
      else (
        Buffer.add_char buf '<';
        Buffer.add_string buf e.ename;
        List.iter
          (fun a ->
            match a.Node.desc with
            | Node.Attribute at ->
                Buffer.add_char buf ' ';
                Buffer.add_string buf at.aname;
                Buffer.add_string buf "=\"";
                escape_attr buf at.avalue;
                Buffer.add_char buf '\"'
            | _ -> ())
          e.attrs;
        Buffer.add_string buf ">\n";
        List.iter
          (fun c ->
            add_node_indented buf (depth + 1) c;
            Buffer.add_char buf '\n')
          e.children;
        pad ();
        Buffer.add_string buf "</";
        Buffer.add_string buf e.ename;
        Buffer.add_char buf '>')
  | Node.Attribute _ | Node.Text _ | Node.Comment _ | Node.Pi _ ->
      pad ();
      add_node buf n

let node_to_string_indented n =
  let buf = Buffer.create 256 in
  add_node_indented buf 0 n;
  Buffer.contents buf

let sequence_to_string (s : Item.sequence) =
  let buf = Buffer.create 256 in
  let rec go prev_atom = function
    | [] -> ()
    | Item.Atom a :: rest ->
        if prev_atom then Buffer.add_char buf ' ';
        escape_text buf (Atomic.to_string a);
        go true rest
    | Item.Node n :: rest ->
        add_node buf n;
        go false rest
  in
  go false s;
  Buffer.contents buf

let sequence_to_string_indented (s : Item.sequence) =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf '\n';
      match it with
      | Item.Atom a -> Buffer.add_string buf (Atomic.to_string a)
      | Item.Node n -> add_node_indented buf 0 n)
    s;
  Buffer.contents buf

let sequence_to_file path s =
  let oc = open_out_bin path in
  output_string oc (sequence_to_string s);
  close_out oc
