(* A small, fast, non-validating XML parser sufficient for the paper's
   workloads (XMark and DBLP-style documents): elements, attributes,
   character data with the five predefined entities, numeric character
   references, comments, processing instructions, CDATA sections, and an
   optional XML declaration.  Namespace declarations are kept as plain
   attributes; DTDs are skipped.

   The parser is a single left-to-right pass over the input string with an
   explicit element stack, so parsing is O(n) and allocation is dominated
   by the node tree itself — document loading dominates optimized query
   time in the paper (Section 7), and the same holds here. *)

exception Parse_error of { position : int; message : string }

let error pos fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { position = pos; message })) fmt

type state = { src : string; mutable pos : int; len : int }

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

let skip_ws st =
  while
    st.pos < st.len
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st 1
  | Some c -> error st.pos "expected a name, found %C" c
  | None -> error st.pos "expected a name, found end of input");
  while st.pos < st.len && is_name_char st.src.[st.pos] do
    advance st 1
  done;
  String.sub st.src start (st.pos - start)

let decode_entity st =
  (* called with pos on the '&' *)
  let start = st.pos in
  advance st 1;
  match String.index_from_opt st.src st.pos ';' with
  | None -> error start "unterminated entity reference"
  | Some semi ->
      let name = String.sub st.src st.pos (semi - st.pos) in
      st.pos <- semi + 1;
      if String.length name > 1 && name.[0] = '#' then
        let code =
          if name.[1] = 'x' || name.[1] = 'X' then
            int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
          else int_of_string_opt (String.sub name 1 (String.length name - 1))
        in
        match code with
        | Some c when c < 128 -> String.make 1 (Char.chr c)
        | Some c ->
            (* minimal UTF-8 encoding for the BMP *)
            let b = Buffer.create 4 in
            if c < 0x800 then (
              Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F))))
            else (
              Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F))));
            Buffer.contents b
        | None -> error start "malformed character reference &%s;" name
      else
        match name with
        | "lt" -> "<"
        | "gt" -> ">"
        | "amp" -> "&"
        | "quot" -> "\""
        | "apos" -> "'"
        | other -> error start "unknown entity &%s;" other

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st 1; q
    | Some c -> error st.pos "expected quoted attribute value, found %C" c
    | None -> error st.pos "unexpected end of input in attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st.pos "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' -> Buffer.add_string buf (decode_entity st); go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_ws st;
    match peek st with
    | Some c when is_name_start c ->
        let name = parse_name st in
        skip_ws st;
        (match peek st with
        | Some '=' -> advance st 1
        | _ -> error st.pos "expected '=' after attribute name %s" name);
        skip_ws st;
        let value = parse_attr_value st in
        go (Node.attribute name value :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let parse_text st =
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None | Some '<' -> ()
    | Some '&' -> Buffer.add_string buf (decode_entity st); go ()
    | Some c -> Buffer.add_char buf c; advance st 1; go ()
  in
  go ();
  Buffer.contents buf

let skip_until st marker =
  let rec go () =
    if st.pos >= st.len then error st.pos "unterminated construct (expected %S)" marker
    else if looking_at st marker then advance st (String.length marker)
    else (advance st 1; go ())
  in
  go ()

let read_until st marker =
  let start = st.pos in
  let rec go () =
    if st.pos >= st.len then error st.pos "unterminated construct (expected %S)" marker
    else if looking_at st marker then (
      let s = String.sub st.src start (st.pos - start) in
      advance st (String.length marker);
      s)
    else (advance st 1; go ())
  in
  go ()

(* Parse one element assuming pos is just past "<name".  Returns the node. *)
let rec parse_element st name =
  let attrs = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then (
    advance st 2;
    Node.element name ~attrs ~children:[])
  else (
    (match peek st with
    | Some '>' -> advance st 1
    | _ -> error st.pos "malformed start tag for <%s>" name);
    let children = parse_content st in
    (* parse_content stops at "</" *)
    advance st 2;
    let close = parse_name st in
    if not (String.equal close name) then
      error st.pos "mismatched end tag </%s> for <%s>" close name;
    skip_ws st;
    (match peek st with
    | Some '>' -> advance st 1
    | _ -> error st.pos "malformed end tag </%s>" close);
    Node.element name ~attrs ~children)

and parse_content st =
  let rec go acc =
    if st.pos >= st.len then List.rev acc
    else if looking_at st "</" then List.rev acc
    else if looking_at st "<!--" then (
      advance st 4;
      let body = read_until st "-->" in
      go (Node.comment body :: acc))
    else if looking_at st "<![CDATA[" then (
      advance st 9;
      let body = read_until st "]]>" in
      go (Node.text body :: acc))
    else if looking_at st "<?" then (
      advance st 2;
      let target = parse_name st in
      skip_ws st;
      let body = read_until st "?>" in
      go (Node.pi target body :: acc))
    else if looking_at st "<!" then (
      (* DOCTYPE or other declaration: skip to the matching '>' *)
      skip_until st ">";
      go acc)
    else if looking_at st "<" then (
      advance st 1;
      let name = parse_name st in
      go (parse_element st name :: acc))
    else
      let txt = parse_text st in
      if String.length txt = 0 then go acc else go (Node.text txt :: acc)
  in
  go []

let parse_string ?uri (src : string) : Node.t =
  let st = { src; pos = 0; len = String.length src } in
  skip_ws st;
  if looking_at st "<?xml" then skip_until st "?>";
  let children = parse_content st in
  if st.pos < st.len then error st.pos "trailing content after document element";
  let elements = List.filter (fun n -> Node.kind n = Node.Kelement) children in
  (match elements with
  | [] -> error 0 "document has no root element"
  | [ _ ] -> ()
  | _ -> error 0 "document has more than one root element");
  let doc = Node.document ?uri children in
  Node.renumber doc;
  doc

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string ~uri:path s
