lib/xml/xml_parser.ml: Buffer Char List Node Printf String
