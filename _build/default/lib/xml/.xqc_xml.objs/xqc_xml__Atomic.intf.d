lib/xml/atomic.mli: Format
