lib/xml/item.ml: Atomic Float Format List Node String
