lib/xml/item.mli: Atomic Format Node
