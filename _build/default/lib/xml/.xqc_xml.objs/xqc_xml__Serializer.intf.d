lib/xml/serializer.mli: Buffer Item Node
