lib/xml/serializer.ml: Atomic Buffer Item List Node String
