lib/xml/node.ml: Atomic Buffer List
