lib/xml/node.mli: Atomic
