lib/xml/atomic.ml: Float Format Printf String
