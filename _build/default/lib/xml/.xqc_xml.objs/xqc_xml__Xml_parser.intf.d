lib/xml/xml_parser.mli: Node
