(* Atomic values: lexical forms, casting, same-type equality/ordering. *)

module A = Xqc.Atomic

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_lexical () =
  check "integer" "42" (A.to_string (A.Integer 42));
  check "negative" "-7" (A.to_string (A.Integer (-7)));
  check "double whole" "12" (A.to_string (A.Double 12.0));
  check "double frac" "1.5" (A.to_string (A.Double 1.5));
  check "nan" "NaN" (A.to_string (A.Double Float.nan));
  check "inf" "INF" (A.to_string (A.Double Float.infinity));
  check "-inf" "-INF" (A.to_string (A.Double Float.neg_infinity));
  check "bool" "true" (A.to_string (A.Boolean true));
  check "string" "hi" (A.to_string (A.String "hi"))

let test_cast_to_integer () =
  Alcotest.(check int) "from string" 7
    (match A.cast A.T_integer (A.String "7") with A.Integer i -> i | _ -> -1);
  Alcotest.(check int) "from untyped with ws" 7
    (match A.cast A.T_integer (A.Untyped " 7 ") with A.Integer i -> i | _ -> -1);
  Alcotest.(check int) "from decimal-looking string" 42
    (match A.cast A.T_integer (A.Untyped "42.0") with A.Integer i -> i | _ -> -1);
  Alcotest.(check int) "from double truncates" 3
    (match A.cast A.T_integer (A.Double 3.9) with A.Integer i -> i | _ -> -1);
  Alcotest.(check int) "from boolean" 1
    (match A.cast A.T_integer (A.Boolean true) with A.Integer i -> i | _ -> -1)

let test_cast_errors () =
  check_bool "abc to integer fails" false (A.castable A.T_integer (A.Untyped "abc"));
  check_bool "3.5 to integer fails" false (A.castable A.T_integer (A.String "3.5"));
  check_bool "maybe to boolean fails" false (A.castable A.T_boolean (A.String "maybe"));
  check_bool "1 to boolean ok" true (A.castable A.T_boolean (A.Untyped "1"));
  check_bool "date accepts lexical" true (A.castable A.T_date (A.String "2006-04-01"))

let test_cast_boolean () =
  check_bool "string true" true
    (match A.cast A.T_boolean (A.String "true") with A.Boolean b -> b | _ -> false);
  check_bool "string 0" false
    (match A.cast A.T_boolean (A.String "0") with A.Boolean b -> b | _ -> true);
  check_bool "zero double" false
    (match A.cast A.T_boolean (A.Double 0.0) with A.Boolean b -> b | _ -> true);
  check_bool "nan is false" false
    (match A.cast A.T_boolean (A.Double Float.nan) with A.Boolean b -> b | _ -> true)

let test_equal_same_type () =
  check_bool "int/int" true (A.equal_same_type (A.Integer 3) (A.Integer 3));
  check_bool "int/double promoted" true (A.equal_same_type (A.Integer 3) (A.Double 3.0));
  check_bool "strings by content" true (A.equal_same_type (A.String "a") (A.Untyped "a"));
  check_bool "string vs int" false (A.equal_same_type (A.String "3") (A.Integer 3));
  check_bool "nan <> nan" false
    (A.equal_same_type (A.Double Float.nan) (A.Double Float.nan))

let test_compare_same_type () =
  Alcotest.(check bool) "1 < 2" true (A.compare_same_type (A.Integer 1) (A.Integer 2) < 0);
  Alcotest.(check bool) "2.5 > 2" true (A.compare_same_type (A.Decimal 2.5) (A.Integer 2) > 0);
  Alcotest.(check bool) "abc < abd" true (A.compare_same_type (A.String "abc") (A.String "abd") < 0);
  Alcotest.check_raises "string vs bool raises" (A.Cast_error "cannot compare xs:string with xs:boolean")
    (fun () -> ignore (A.compare_same_type (A.String "x") (A.Boolean true)))

let test_type_names () =
  Alcotest.(check bool) "roundtrip all type names" true
    (List.for_all
       (fun tn -> A.type_name_of_string (A.type_name_to_string tn) = Some tn)
       [ A.T_untyped; A.T_string; A.T_boolean; A.T_integer; A.T_decimal;
         A.T_float; A.T_double; A.T_any_uri; A.T_qname; A.T_date; A.T_time;
         A.T_date_time; A.T_duration; A.T_g_year; A.T_g_month; A.T_g_day;
         A.T_g_year_month; A.T_g_month_day; A.T_hex_binary; A.T_base64_binary;
         A.T_notation ])

let test_is_numeric () =
  check_bool "integer" true (A.is_numeric (A.Integer 1));
  check_bool "decimal" true (A.is_numeric (A.Decimal 1.0));
  check_bool "untyped not numeric" false (A.is_numeric (A.Untyped "1"));
  check_bool "string not numeric" false (A.is_numeric (A.String "1"))

(* qcheck: casting any integer to string and back is the identity. *)
let prop_int_string_roundtrip =
  QCheck.Test.make ~name:"integer -> string -> integer roundtrip" ~count:200
    QCheck.int (fun i ->
      match A.cast A.T_integer (A.cast A.T_string (A.Integer i)) with
      | A.Integer j -> i = j
      | _ -> false)

(* qcheck: cast to double then equal_same_type with the original integer. *)
let prop_int_double_equal =
  QCheck.Test.make ~name:"integer equals its double promotion" ~count:200
    QCheck.small_signed_int (fun i ->
      A.equal_same_type (A.Integer i) (A.cast A.T_double (A.Integer i)))

(* qcheck: compare_same_type is antisymmetric on integers. *)
let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let c1 = A.compare_same_type (A.Integer a) (A.Integer b) in
      let c2 = A.compare_same_type (A.Integer b) (A.Integer a) in
      compare c1 0 = compare 0 c2)

let () =
  Alcotest.run "atomic"
    [
      ( "unit",
        [
          Alcotest.test_case "lexical forms" `Quick test_lexical;
          Alcotest.test_case "cast to integer" `Quick test_cast_to_integer;
          Alcotest.test_case "cast errors" `Quick test_cast_errors;
          Alcotest.test_case "cast to boolean" `Quick test_cast_boolean;
          Alcotest.test_case "equal same type" `Quick test_equal_same_type;
          Alcotest.test_case "compare same type" `Quick test_compare_same_type;
          Alcotest.test_case "type name roundtrip" `Quick test_type_names;
          Alcotest.test_case "is_numeric" `Quick test_is_numeric;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_string_roundtrip; prop_int_double_equal; prop_compare_antisym ]
      );
    ]
