(* End-to-end evaluation: a table of queries and expected serialized
   results, run through the fully optimized engine (cross-strategy
   agreement is covered separately in test_equivalence.ml). *)

let doc =
  Xqc.parse_document ~uri:"d.xml"
    {|<root><people><person id="p1" age="30"><name>Alice</name><pet>cat</pet><pet>dog</pet></person><person id="p2" age="25"><name>Bob</name></person></people><nums><n>1</n><n>2</n><n>3</n></nums></root>|}

let eval ?(strategy = Xqc.Optimized) q =
  Xqc.serialize
    (Xqc.eval_string ~strategy ~variables:[ ("d", [ Xqc.Item.Node doc ]) ] q)

let expect (name, q, expected) =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (eval q))

let arithmetic =
  [
    ("add", "1 + 2", "3");
    ("precedence", "2 + 3 * 4", "14");
    ("division is decimal", "7 div 2", "3.5");
    ("integer division", "7 idiv 2", "3");
    ("mod", "7 mod 2", "1");
    ("unary minus", "-(3) + 1", "-2");
    ("double arithmetic", "1.5e1 * 2", "30");
    ("empty propagates", "() + 1", "");
    ("untyped data in arithmetic", "$d//person[@id = \"p1\"]/@age + 1", "31");
    ("range", "1 to 4", "1 2 3 4");
    ("empty range", "3 to 1", "");
  ]

let comparisons =
  [
    ("general eq true", "(1,2,3) = 2", "true");
    ("general eq false", "(1,2,3) = 5", "false");
    ("general with untyped", "$d//person/@age > 28", "true");
    ("value comparison", "2 eq 2", "true");
    ("value comparison empty", "() eq 2", "");
    ("string comparison", "\"abc\" < \"abd\"", "true");
    ("untyped untyped string semantics", "$d//n[1]/text() = \"1\"", "true");
    ("node is", "($d//person)[1] is ($d//person)[1]", "true");
    ("node before", "($d//person)[1] << ($d//person)[2]", "true");
    ("and", "1 = 1 and 2 = 2", "true");
    ("or short circuit-ish", "1 = 1 or 1 div 1 = 0", "true");
    ("not", "not(1 = 2)", "true");
  ]

let paths =
  [
    ("child path", "$d/root/people/person/name/text()", "AliceBob");
    ("descendant", "count($d//person)", "2");
    ("attribute", "$d//person[1]/@id", "id=\"p1\"");
    ("attribute string", "string($d//person[1]/@id)", "p1");
    ("wildcard", "count($d/root/*)", "2");
    ("parent", "name($d//name[1]/..)", "person");
    ("ancestor", "count($d//name[1]/ancestor::*)", "3");
    ("self", "count($d//person/self::person)", "2");
    ("following-sibling", "name($d//people/following-sibling::*)", "nums");
    ("preceding-sibling", "name($d//nums/preceding-sibling::*)", "people");
    ("positional predicate", "$d//pet[2]/text()", "dog");
    ("last()", "$d//pet[last()]/text()", "dog");
    ("position()", "$d//n[position() > 1]/text()", "23");
    ("boolean predicate", "$d//person[@id = \"p2\"]/name/text()", "Bob");
    ("predicate keeps order", "$d//n[. > 1]/text()", "23");
    ("text kind test", "count($d//person[1]/pet/text())", "2");
    ("node kind test", "count($d//people/node())", "2");
    ( "doc order after union",
      "for $x in ($d//nums | $d//people) return name($x)", "people nums" );
  ]

let flwor =
  [
    ("simple for", "for $x in (1,2,3) return $x * 2", "2 4 6");
    ("for at", "for $x at $i in (\"a\",\"b\") return ($i, $x)", "1 a 2 b");
    ("let", "let $x := (1,2) return count($x)", "2");
    ("where", "for $x in 1 to 10 where $x mod 3 = 0 return $x", "3 6 9");
    ("two fors", "for $x in (1,2), $y in (10,20) return $x + $y", "11 21 12 22");
    ( "order by",
      "for $x in (3,1,2) order by $x return $x", "1 2 3" );
    ( "order by descending",
      "for $x in (3,1,2) order by $x descending return $x", "3 2 1" );
    ( "order by empty greatest",
      "for $p in $d//person order by $p/pet[1]/text() empty greatest return $p/name/text()",
      "AliceBob" );
    ( "order by empty least",
      "for $p in $d//person order by $p/pet[1]/text() empty least return $p/name/text()",
      "BobAlice" );
    ( "order by string keys",
      "for $p in $d//person order by $p/name/text() descending return $p/name/text()",
      "BobAlice" );
    ( "nested flwor",
      "for $x in (1,2) return (for $y in (1,2) return $x * $y)", "1 2 2 4" );
    ( "join with group semantics",
      "for $p in $d//person let $c := (for $q in $d//pet where $q/.. is $p return $q) return count($c)",
      "2 0" );
    ("stable order", "for $x in (2,1,2,1) order by $x return $x", "1 1 2 2");
  ]

let constructors =
  [
    ("element", "<a>{1 + 1}</a>", "<a>2</a>");
    ("nested", "<a><b>x</b></a>", "<a><b>x</b></a>");
    ("avt", "let $v := 5 return <a b=\"v={$v}!\"/>", "<a b=\"v=5!\"/>");
    ("attribute from node", "<a>{$d//person[1]/@id}</a>", "<a id=\"p1\"/>");
    ("sequence content spacing", "<a>{1,2,3}</a>", "<a>1 2 3</a>");
    ("copied nodes", "<a>{$d//name}</a>", "<a><name>Alice</name><name>Bob</name></a>");
    ("text constructor", "text { \"hi\" }", "hi");
    ("empty text constructor", "text { () }", ""); 
    ("comment constructor", "comment { \"c\" }", "<!--c-->");
    ("mixed literal and enclosed", "<a>x{1}y</a>", "<a>x1y</a>");
  ]

let functions =
  [
    ("count", "count((1,2,3))", "3");
    ("sum", "sum((1,2,3))", "6");
    ("sum empty", "sum(())", "0");
    ("avg", "avg((1,2,3))", "2");
    ("avg empty", "avg(())", "");
    ("min max", "(min((3,1,2)), max((3,1,2)))", "1 3");
    ("min promotes", "min((2, 1.5))", "1.5");
    ("empty exists", "(empty(()), exists(()))", "true false");
    ("string of node", "string($d//name[1])", "Alice");
    ("string-length", "string-length(\"abcd\")", "4");
    ("concat", "concat(\"a\", \"b\", \"c\")", "abc");
    ("string-join", "string-join((\"a\",\"b\"), \"-\")", "a-b");
    ("contains", "contains(\"hello world\", \"lo w\")", "true");
    ("starts ends", "(starts-with(\"abc\",\"ab\"), ends-with(\"abc\",\"bc\"))", "true true");
    ("substring", "substring(\"hello\", 2, 3)", "ell");
    ("upper lower", "(upper-case(\"aB\"), lower-case(\"aB\"))", "AB ab");
    ("normalize-space", "normalize-space(\"  a   b \")", "a b");
    ("translate", "translate(\"abcab\", \"ab\", \"AB\")", "ABcAB");
    ("number", "number(\"3.5\") + 0.5", "4");
    ("number nan", "string(number(\"abc\"))", "NaN");
    ("round floor ceiling", "(round(2.5), floor(2.7), ceiling(2.1))", "3 2 3");
    ("abs", "abs(-4)", "4");
    ("distinct-values", "distinct-values((1, 2, 1, \"1\", 2.0))", "1 2");
    ("reverse", "reverse((1,2,3))", "3 2 1");
    ("subsequence", "subsequence((1,2,3,4,5), 2, 3)", "2 3 4");
    ("insert-before", "insert-before((1,2,3), 2, 99)", "1 99 2 3");
    ("remove", "remove((1,2,3), 2)", "1 3");
    ("exactly-one", "exactly-one((42))", "42");
    ("zero-or-one empty", "zero-or-one(())", "");
    ("one-or-more", "one-or-more((1,2))", "1 2");
    ("name local-name", "(name($d//person[1]), local-name($d//person[1]))", "person person");
    ("root", "count(root($d//name[1])//person)", "2");
    ("boolean of nodes", "boolean($d//person)", "true");
    ("data", "data($d//n)", "1 2 3");
    ("string-join over path", "string-join($d//pet/text(), \",\")", "cat,dog");
  ]

let node_set_ops =
  [
    ("intersect", "count($d//person intersect $d//*)", "2");
    ("except", "for $x in ($d/root/* except $d//people) return name($x)", "nums");
    ("intersect empty", "count($d//person intersect $d//n)", "0");
    ("except keeps doc order", "for $x in ($d//* except $d//pet) return name($x)",
     "root people person name person name nums n n n");
  ]

let computed_constructors =
  [
    ("computed element", "element box { 1 + 1 }", "<box>2</box>");
    ("computed attribute", "<e>{attribute k { 6 * 7 }}</e>", {|<e k="42"/>|});
    ("computed pi", {|processing-instruction target { "data" }|}, "<?target data?>");
    ("document node", "count(document { <r><a/></r> }/r/a)", "1");
    ("element wrapping nodes", "element all { $d//pet }", "<all><pet>cat</pet><pet>dog</pet></all>");
  ]

let extra_functions =
  [
    ("deep-equal true", {|deep-equal(<a x="1"><b/></a>, <a x="1"><b/></a>)|}, "true");
    ("deep-equal attr order", {|deep-equal(<a x="1" y="2"/>, <a y="2" x="1"/>)|}, "true");
    ("deep-equal false", "deep-equal(<a/>, <b/>)", "false");
    ("deep-equal atoms", "deep-equal((1, 2), (1.0, 2.0))", "true");
    ("index-of", {|index-of(("a","b","a"), "a")|}, "1 3");
    ("index-of untyped", {|index-of($d//n/text(), "2")|}, "2");
    ("compare", {|(compare("a","b"), compare("b","b"), compare("c","b"))|}, "-1 0 1");
    ("substring-before", {|substring-before("key=value", "=")|}, "key");
    ("substring-after", {|substring-after("key=value", "=")|}, "value");
    ("substring-before missing", {|substring-before("abc", "z")|}, "");
    ("matches", {|matches("abc123", "[a-c]+\d")|}, "true");
    ("matches anchors", {|matches("abc", "^a.c$")|}, "true");
    ("matches alternation", {|matches("xbc", "(a|x)bc")|}, "true");
    ("replace", {|replace("2006-07-06", "-", "/")|}, "2006/07/06");
    ("replace class", {|replace("a1b2", "\d", "#")|}, "a#b#");
    ("tokenize", {|count(tokenize("a b c", "\s"))|}, "3");
    ("string-to-codepoints", {|string-to-codepoints("AB")|}, "65 66");
    ("codepoints-to-string", "codepoints-to-string((72, 105))", "Hi");
  ]

let control =
  [
    ("if then", "if (1 = 1) then \"y\" else \"n\"", "y");
    ("if else", "if (1 = 2) then \"y\" else \"n\"", "n");
    ("if on node sequence", "if ($d//person) then \"some\" else \"none\"", "some");
    ("some", "some $x in (1,2,3) satisfies $x > 2", "true");
    ("every", "every $x in (1,2,3) satisfies $x > 2", "false");
    ("some multiple binders", "some $x in (1,2), $y in (2,3) satisfies $x = $y", "true");
    ("quantifier over empty", "(some $x in () satisfies true(), every $x in () satisfies false())", "false true");
    ( "typeswitch integer",
      "typeswitch (42) case $i as xs:integer return \"int\" case $s as xs:string return \"str\" default return \"other\"",
      "int" );
    ( "typeswitch node",
      "typeswitch ($d//name[1]) case element(name) return \"name elem\" default return \"other\"",
      "name elem" );
    ( "typeswitch default",
      "typeswitch (3.14) case $i as xs:integer return \"int\" default $o return string($o)",
      "3.14" );
    ("instance of", "(1,2) instance of xs:integer+", "true");
    ("instance of fails", "(1, \"x\") instance of xs:integer*", "false");
    ("treat as", "(1,2) treat as xs:integer*", "1 2");
    ("castable", "(\"12\" castable as xs:integer, \"x\" castable as xs:integer)", "true false");
    ("cast", "\"12\" cast as xs:integer", "12"); 
    ("cast optional empty", "() cast as xs:integer?", "");
    ("union dedups and orders", "count(($d//person | $d//person))", "2");
  ]

let predicate_edge_cases =
  [
    ("nested predicate with last", "$d//person[pet[last()]]/name/text()", "Alice");
    ("predicate on predicate result", "($d//pet[1])[1]/text()", "cat");
    ("position in inner not outer", "$d//person[pet[2]]/@id", {|id="p1"|});
    ("numeric predicate via expression", "$d//n[1 + 1]/text()", "2");
    ("boolean-typed function predicate", "$d//person[empty(pet)]/name/text()", "Bob");
    ("predicate over atomic sequence", "(10, 20, 30)[. > 15]", "20 30");
    ("chained predicates", "$d//n[. > 1][1]/text()", "2");
    ("last on empty", "$d//zz[last()]", "");
    ("predicate false for all", "$d//n[. > 99]", "");
    ("attribute kind test step", "count($d//person/attribute(id))", "2");
    ("element kind test step", "count($d//people/element(person))", "2");
    ("wildcard attribute", "count($d//person[1]/@*)", "2");
  ]

let user_functions =
  [
    ( "simple function",
      "declare function local:double($x) { $x * 2 }; local:double(21)", "42" );
    ( "recursion",
      "declare function local:fib($n) { if ($n <= 1) then $n else local:fib($n - 1) + local:fib($n - 2) }; local:fib(10)",
      "55" );
    ( "mutual composition",
      "declare function local:inc($x) { $x + 1 }; declare function local:twice($x) { local:inc(local:inc($x)) }; local:twice(1)",
      "3" );
    ( "function over nodes",
      "declare function local:names($p) { $p/name/text() }; local:names($d//person)",
      "AliceBob" );
    ( "typed params",
      "declare function local:f($x as xs:integer) as xs:integer { $x }; local:f(3)",
      "3" );
    ( "global variable",
      "declare variable $g := 10; declare function local:f($x) { $x + $g }; local:f(5)",
      "15" );
  ]

let errors =
  [
    ("unknown function", "nosuchfn(1)");
    ("unknown variable", "$nosuchvar");
    ("treat as failure", "(1, \"x\") treat as xs:integer*");
    ("cast failure", "\"abc\" cast as xs:integer");
    ("exactly-one failure", "exactly-one((1,2))");
    ("arith on nodes", "$d//person + 1");
  ]

let error_tests =
  List.map
    (fun (name, q) ->
      Alcotest.test_case name `Quick (fun () ->
          match eval q with
          | exception Xqc.Error _ -> ()
          | r -> Alcotest.failf "expected an error, got %S" r))
    errors

let () =
  Alcotest.run "eval"
    [
      ("arithmetic", List.map expect arithmetic);
      ("comparisons", List.map expect comparisons);
      ("paths", List.map expect paths);
      ("flwor", List.map expect flwor);
      ("constructors", List.map expect constructors);
      ("functions", List.map expect functions);
      ("control", List.map expect control);
      ("node set ops", List.map expect node_set_ops);
      ("computed constructors", List.map expect computed_constructors);
      ("extra functions", List.map expect extra_functions);
      ("user functions", List.map expect user_functions);
      ("predicate edge cases", List.map expect predicate_edge_cases);
      ("errors", error_tests);
    ]
