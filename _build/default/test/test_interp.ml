(* The Core interpreters: the naive baseline and the indexed (Saxon
   stand-in) variant, including the join-detection hook. *)

open Xqc

let doc =
  parse_document
    {|<db><people><p id="a"><inc>10</inc></p><p id="b"><inc>20</inc></p><p id="c"><inc>20</inc></p></people><orders><o buyer="b"/><o buyer="a"/><o buyer="b"/><o buyer="zz"/></orders></db>|}

let eval_with runner q =
  let core = Normalize.normalize_string q in
  let ctx = context () in
  bind_variable ctx "d" [ Item.Node doc ];
  serialize (runner ctx core)

let naive q = eval_with (fun ctx core -> Interp.run ctx core) q
let indexed q = eval_with (fun ctx core -> Indexed.run ctx core) q

let check = Alcotest.(check string)

let join_query =
  "for $p in $d//p return <r id=\"{$p/@id}\">{count(for $o in $d//o where $o/@buyer = $p/@id return $o)}</r>"

let test_join_results_agree () =
  check "indexed equals naive on the join" (naive join_query) (indexed join_query)

let test_join_detection () =
  (* the hook should recognize the for/where pair *)
  let core = Normalize.normalize_string join_query in
  let rec find_pair (e : Core_ast.cexpr) : bool =
    match e with
    | Core_ast.C_flwor (Core_ast.CC_for { var; _ } :: Core_ast.CC_where w :: _, _, _) ->
        Indexed.split_equality var w <> None
    | Core_ast.C_flwor (_ :: rest, orders, ret) ->
        find_pair (Core_ast.C_flwor (rest, orders, ret))
    | Core_ast.C_elem (_, c) -> find_pair c
    | Core_ast.C_seq (a, b) -> find_pair a || find_pair b
    | Core_ast.C_call (_, args) -> List.exists find_pair args
    | _ -> false
  in
  (* the inner block lives in the return clause of the outer FLWOR *)
  let rec find_anywhere (e : Core_ast.cexpr) : bool =
    find_pair e
    ||
    match e with
    | Core_ast.C_flwor (_, _, ret) -> find_anywhere ret
    | Core_ast.C_elem (_, c) | Core_ast.C_attr (_, c) -> find_anywhere c
    | Core_ast.C_seq (a, b) -> find_anywhere a || find_anywhere b
    | Core_ast.C_call (_, args) -> List.exists find_anywhere args
    | _ -> false
  in
  Alcotest.(check bool) "equality where-clause detected" true
    (find_anywhere core.Core_ast.cq_main)

let test_split_equality () =
  let norm s =
    match (Normalize.normalize_string s).Core_ast.cq_main with
    | Core_ast.C_flwor ([ Core_ast.CC_for { var; _ }; Core_ast.CC_where w ], _, _) ->
        (var, w)
    | _ -> Alcotest.fail "unexpected core shape"
  in
  let var, w = norm "for $x in $s where $x/@k = $outer return 1" in
  (match Indexed.split_equality var w with
  | Some (outer_side, inner_side) ->
      Alcotest.(check (list string)) "inner side depends on the loop var"
        [ var ] (Core_ast.free_vars inner_side);
      Alcotest.(check bool) "outer side free of the loop var" true
        (not (List.mem var (Core_ast.free_vars outer_side)))
  | None -> Alcotest.fail "equality not split");
  (* non-equality or both-sides predicates must not split *)
  let var2, w2 = norm "for $x in $s where $x/@k < $outer return 1" in
  Alcotest.(check bool) "inequality not split" true (Indexed.split_equality var2 w2 = None);
  let var3, w3 = norm "for $x in $s where $x/@k = $x/@j return 1" in
  Alcotest.(check bool) "self-comparison not split" true (Indexed.split_equality var3 w3 = None)

let test_interp_features () =
  (* spot-check interpreter coverage beyond what equivalence tests hit *)
  List.iter
    (fun (q, expected) -> check q expected (naive q))
    [
      ("sum(for $i in 1 to 5 return $i)", "15");
      ("for $x at $i in (\"a\",\"b\") return $i", "1 2");
      ("for $x in (2,3,1) order by $x return $x", "1 2 3");
      ("typeswitch (1) case xs:integer return \"i\" default return \"d\"", "i");
      ("(1,2) instance of xs:integer+", "true");
      ("\"5\" cast as xs:integer", "5");
      ("<a b=\"{1+1}\">{2+2}</a>", "<a b=\"2\">4</a>");
    ]

let test_recursive_function_in_interp () =
  let q =
    "declare function local:sum($n) { if ($n = 0) then 0 else $n + local:sum($n - 1) }; local:sum(10)"
  in
  check "recursion" "55" (naive q);
  check "recursion indexed" "55" (indexed q)

let test_index_correct_on_duplicates () =
  (* several inner tuples share a key; order must be inner order *)
  let q =
    "for $k in (\"b\") return (for $o in $d//o where $o/@buyer = $k return string($o/@buyer))"
  in
  check "duplicates in inner order" (naive q) (indexed q)

let () =
  Alcotest.run "interp"
    [
      ( "indexed",
        [
          Alcotest.test_case "join agree" `Quick test_join_results_agree;
          Alcotest.test_case "join detection" `Quick test_join_detection;
          Alcotest.test_case "split equality" `Quick test_split_equality;
          Alcotest.test_case "duplicates" `Quick test_index_correct_on_duplicates;
        ] );
      ( "naive",
        [
          Alcotest.test_case "features" `Quick test_interp_features;
          Alcotest.test_case "recursion" `Quick test_recursive_function_in_interp;
        ] );
    ]
