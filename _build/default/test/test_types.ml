(* Type substrate: promotion (Table 2), convert-operand, general/value
   comparison semantics, sequence-type matching, schema validation. *)

module A = Xqc.Atomic
module P = Xqc.Promotion
module ST = Xqc.Seqtype
module Sch = Xqc.Schema
module I = Xqc.Item

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let targets a = List.map snd (P.promote_to_simple_types a)

let test_promotion_targets () =
  Alcotest.(check (list string))
    "integer promotes along the tower"
    [ "xs:integer"; "xs:decimal"; "xs:float"; "xs:double" ]
    (List.map A.type_name_to_string (targets (A.Integer 2)));
  Alcotest.(check (list string))
    "untyped numeric gets string and double entries"
    [ "xs:string"; "xs:double" ]
    (List.map A.type_name_to_string (targets (A.Untyped "3.5")));
  Alcotest.(check (list string))
    "untyped non-numeric gets only a string entry" [ "xs:string" ]
    (List.map A.type_name_to_string (targets (A.Untyped "abc")));
  Alcotest.(check (list string))
    "anyURI promotes to string" [ "xs:anyURI"; "xs:string" ]
    (List.map A.type_name_to_string (targets (A.Any_uri "u")));
  Alcotest.(check (list string))
    "boolean stays boolean" [ "xs:boolean" ]
    (List.map A.type_name_to_string (targets (A.Boolean true)))

let ct t1 t2 = P.comparison_type t1 t2

let test_comparison_type_table2 () =
  (* the rows of Table 2 *)
  Alcotest.(check (option string)) "untyped/untyped -> string" (Some "xs:string")
    (Option.map A.type_name_to_string (ct A.T_untyped A.T_untyped));
  Alcotest.(check (option string)) "untyped/numeric -> double" (Some "xs:double")
    (Option.map A.type_name_to_string (ct A.T_untyped A.T_integer));
  Alcotest.(check (option string)) "numeric/untyped -> double" (Some "xs:double")
    (Option.map A.type_name_to_string (ct A.T_decimal A.T_untyped));
  Alcotest.(check (option string)) "untyped/other -> other" (Some "xs:date")
    (Option.map A.type_name_to_string (ct A.T_untyped A.T_date));
  Alcotest.(check (option string)) "integer/double -> double" (Some "xs:double")
    (Option.map A.type_name_to_string (ct A.T_integer A.T_double));
  Alcotest.(check (option string)) "string/anyURI -> string" (Some "xs:string")
    (Option.map A.type_name_to_string (ct A.T_string A.T_any_uri));
  Alcotest.(check (option string)) "string/integer incomparable" None
    (Option.map A.type_name_to_string (ct A.T_string A.T_integer));
  Alcotest.(check (option string)) "boolean/boolean -> boolean" (Some "xs:boolean")
    (Option.map A.type_name_to_string (ct A.T_boolean A.T_boolean))

let atoms xs = List.map (fun a -> I.Atom a) xs

let test_general_compare () =
  let geq = P.general_compare P.Eq in
  check_bool "untyped '1' = 1" true (geq (atoms [ A.Untyped "1" ]) (atoms [ A.Integer 1 ]));
  check_bool "untyped '1.0' = 1" true (geq (atoms [ A.Untyped "1.0" ]) (atoms [ A.Integer 1 ]));
  check_bool "untyped '1.0' <> untyped '1' (string comparison)" false
    (geq (atoms [ A.Untyped "1.0" ]) (atoms [ A.Untyped "1" ]));
  check_bool "existential over sequences" true
    (geq (atoms [ A.Integer 1; A.Integer 5 ]) (atoms [ A.Integer 9; A.Integer 5 ]));
  check_bool "empty sequence never matches" false (geq [] (atoms [ A.Integer 1 ]));
  check_bool "lt existential" true
    (P.general_compare P.Lt (atoms [ A.Integer 9; A.Integer 1 ]) (atoms [ A.Integer 2 ]));
  check_bool "untyped vs untyped lt is string order" true
    (P.general_compare P.Lt (atoms [ A.Untyped "10" ]) (atoms [ A.Untyped "9" ]))

let test_value_compare () =
  Alcotest.(check (option bool)) "eq" (Some true)
    (P.value_compare P.Eq (atoms [ A.Integer 2 ]) (atoms [ A.Integer 2 ]));
  Alcotest.(check (option bool)) "empty gives empty" None
    (P.value_compare P.Eq [] (atoms [ A.Integer 2 ]));
  Alcotest.check_raises "non-singleton raises"
    (A.Cast_error "value comparison requires singleton operands") (fun () ->
      ignore (P.value_compare P.Eq (atoms [ A.Integer 1; A.Integer 2 ]) (atoms [ A.Integer 1 ])))

let test_convert_operand () =
  (match P.convert_operand (A.Untyped "3") (A.Integer 9) with
  | A.Double 3.0 -> ()
  | other -> Alcotest.failf "expected double 3, got %s" (A.to_string other));
  match P.convert_operand (A.Untyped "x") (A.Untyped "y") with
  | A.String "x" -> ()
  | other -> Alcotest.failf "expected string x, got %s" (A.to_string other)

(* ---------------- sequence types ---------------- *)

let node_a = Xqc.parse_document "<a><b/>text</a>"

let elem name =
  List.find (fun n -> Xqc.Node.name n = Some name) (Xqc.Node.descendants node_a)

let test_seqtype_occurrence () =
  let sch = Sch.empty in
  let int_seq n = List.init n (fun i -> I.Atom (A.Integer i)) in
  let it = ST.It_atomic A.T_integer in
  check_bool "one matches one" true (ST.matches sch (int_seq 1) (ST.item it));
  check_bool "zero fails one" false (ST.matches sch [] (ST.item it));
  check_bool "zero matches ?" true (ST.matches sch [] (ST.optional it));
  check_bool "two fails ?" false (ST.matches sch (int_seq 2) (ST.optional it));
  check_bool "many match *" true (ST.matches sch (int_seq 5) (ST.star it));
  check_bool "zero fails +" false (ST.matches sch [] (ST.plus it));
  check_bool "empty-sequence()" true (ST.matches sch [] ST.Empty_sequence);
  check_bool "empty-sequence() nonempty" false
    (ST.matches sch (int_seq 1) ST.Empty_sequence)

let test_seqtype_kinds () =
  let sch = Sch.empty in
  let e = I.Node (elem "b") in
  check_bool "element(b)" true (ST.item_matches sch e (ST.It_element (Some "b", None)));
  check_bool "element(*)" true (ST.item_matches sch e (ST.It_element (None, None)));
  check_bool "element(c) fails" false (ST.item_matches sch e (ST.It_element (Some "c", None)));
  check_bool "node()" true (ST.item_matches sch e ST.It_node);
  check_bool "item()" true (ST.item_matches sch e ST.It_item);
  check_bool "atomic fails node()" false (ST.item_matches sch (I.Atom (A.Integer 1)) ST.It_node);
  check_bool "integer matches decimal" true
    (ST.item_matches sch (I.Atom (A.Integer 1)) (ST.It_atomic A.T_decimal));
  check_bool "untyped does not match string" false
    (ST.item_matches sch (I.Atom (A.Untyped "x")) (ST.It_atomic A.T_string))

let test_schema_validation () =
  let schema =
    Sch.empty
    |> Sch.declare_element ~name:"auction" ~type_name:"Auction"
    |> Sch.declare_element ~name:"seller" ~when_attr:("country", "US")
         ~type_name:"USSeller"
    |> Sch.derive ~sub:"USSeller" ~base:"Seller"
    |> Sch.declare_attribute ~name:"price" ~type_name:"xs:decimal"
  in
  let doc =
    Xqc.parse_document
      {|<auctions><auction price="10"><seller country="US"/></auction><auction><seller country="FR"/></auction></auctions>|}
  in
  let validated = Sch.validate schema (List.hd (Xqc.Node.children doc)) in
  let sellers =
    List.filter (fun n -> Xqc.Node.name n = Some "seller") (Xqc.Node.descendants validated)
  in
  check_int "two sellers" 2 (List.length sellers);
  Alcotest.(check (list (option string)))
    "only the US seller is annotated"
    [ Some "USSeller"; None ]
    (List.map Xqc.Node.type_annotation sellers);
  check_bool "validate copies (original untouched)" true
    (List.for_all
       (fun n -> Xqc.Node.type_annotation n = None)
       (Xqc.Node.descendants doc));
  (* derives-from through the derivation chain *)
  check_bool "USSeller derives from Seller" true
    (Sch.derives_from schema ~sub:"USSeller" ~base:"Seller");
  check_bool "element(*,Seller) matches the US seller" true
    (ST.item_matches schema (I.Node (List.hd sellers)) (ST.It_element (None, Some "Seller")));
  (* typed value via attribute annotation *)
  let auction = List.hd (Xqc.Node.children validated) in
  let price = List.hd (Xqc.Node.attributes auction) in
  match Xqc.Node.typed_value price with
  | A.Decimal 10.0 -> ()
  | other -> Alcotest.failf "expected decimal 10, got %s" (A.to_string other)

(* qcheck: convert_operand on two untyped values is string conversion. *)
let prop_untyped_pair_string =
  QCheck.Test.make ~name:"untyped/untyped converts to string" ~count:100
    QCheck.(pair string string)
    (fun (a, b) ->
      match P.convert_operand (A.Untyped a) (A.Untyped b) with
      | A.String s -> String.equal s a
      | _ -> false)

(* qcheck: general Eq on singleton integers agrees with OCaml equality. *)
let prop_general_eq_ints =
  QCheck.Test.make ~name:"general eq on singleton ints" ~count:200
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      P.general_compare P.Eq (atoms [ A.Integer a ]) (atoms [ A.Integer b ]) = (a = b))

(* qcheck: promotion always includes the identity entry (when castable). *)
let prop_promotion_includes_self =
  QCheck.Test.make ~name:"promotion includes own type" ~count:100
    QCheck.small_signed_int (fun i ->
      List.exists (fun (_, t) -> t = A.T_integer) (P.promote_to_simple_types (A.Integer i)))

let () =
  Alcotest.run "types"
    [
      ( "promotion",
        [
          Alcotest.test_case "promotion targets" `Quick test_promotion_targets;
          Alcotest.test_case "Table 2 comparison types" `Quick test_comparison_type_table2;
          Alcotest.test_case "general compare" `Quick test_general_compare;
          Alcotest.test_case "value compare" `Quick test_value_compare;
          Alcotest.test_case "convert operand" `Quick test_convert_operand;
        ] );
      ( "seqtypes",
        [
          Alcotest.test_case "occurrences" `Quick test_seqtype_occurrence;
          Alcotest.test_case "kind tests" `Quick test_seqtype_kinds;
        ] );
      ("schema", [ Alcotest.test_case "validation" `Quick test_schema_validation ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_untyped_pair_string; prop_general_eq_ints; prop_promotion_includes_self ]
      );
    ]
