(* The TreeProject operator (document projection): keep the nodes on the
   given paths, prune everything else. *)

open Xqc

let doc =
  parse_document
    {|<site><people><person id="1"><name>A</name><junk>z</junk></person></people><stuff><big>text</big></stuff></site>|}

let project paths =
  let items = Projection.project Schema.empty paths [ Item.Node doc ] in
  Serializer.sequence_to_string items

let child name = (Ast.Child, Ast.Name_test name)
let desc name = (Ast.Descendant_or_self, Ast.Kind_test Seqtype.It_node) :: [ (Ast.Child, Ast.Name_test name) ]

let check = Alcotest.(check string)

let test_child_path () =
  check "keeps only the path"
    "<site><people><person><name>A</name></person></people></site>"
    (project [ [ child "site"; child "people"; child "person"; child "name" ] ])

let test_path_with_attributes () =
  check "attribute step keeps attributes"
    {|<site><people><person id="1"/></people></site>|}
    (project
       [ [ child "site"; child "people"; child "person"; (Ast.Attribute_axis, Ast.Name_test "id") ] ])

let test_exhausted_path_keeps_subtree () =
  check "full subtree below the path"
    {|<site><people><person id="1"><name>A</name><junk>z</junk></person></people></site>|}
    (project [ [ child "site"; child "people"; child "person" ] ])

let test_descendant_path () =
  check "descendant finds name anywhere"
    "<site><people><person><name>A</name></person></people></site>"
    (project [ desc "name" ])

let test_union_of_paths () =
  check "two paths merged"
    "<site><people><person><name>A</name></person></people><stuff><big>text</big></stuff></site>"
    (project [ [ child "site"; child "people"; child "person"; child "name" ]; [ child "site"; child "stuff" ] ])

let test_no_match_prunes_all () =
  check "nothing kept below the root element"
    "<site/>"
    (project [ [ child "site"; child "nosuch" ] ])

let test_projection_preserves_query_result () =
  (* projecting to the paths used by a query must not change its result *)
  let q = "count($d//person/name)" in
  let run d = serialize (eval_string ~variables:[ ("d", [ Item.Node d ]) ] q) in
  let projected =
    match Projection.project Schema.empty [ desc "person" ] [ Item.Node doc ] with
    | [ Item.Node d ] -> d
    | _ -> Alcotest.fail "projection result"
  in
  check "query result unchanged" (run doc) (run projected)

let tree_project_cases =
  [
    Alcotest.test_case "child path" `Quick test_child_path;
    Alcotest.test_case "attributes" `Quick test_path_with_attributes;
    Alcotest.test_case "exhausted path" `Quick test_exhausted_path_keeps_subtree;
    Alcotest.test_case "descendant" `Quick test_descendant_path;
    Alcotest.test_case "union" `Quick test_union_of_paths;
    Alcotest.test_case "prune all" `Quick test_no_match_prunes_all;
    Alcotest.test_case "query preserved" `Quick test_projection_preserves_query_result;
  ]

(* ------------------------------------------------------------------ *)
(* Static path analysis (Doc_paths) + end-to-end projected evaluation  *)
(* ------------------------------------------------------------------ *)

let analyze q = Doc_paths.analyze (Normalize.normalize_string q)

let specs_for v q =
  match List.assoc_opt v (analyze q) with
  | Some s -> s
  | None -> Alcotest.failf "variable %s not tracked" v

let test_analysis_basic () =
  (* navigation + count: person nodes node-only, names subtree *)
  match specs_for "d" "for $p in $d//person return $p/name" with
  | Some specs ->
      Alcotest.(check bool) "has a node-only spec for persons" true
        (List.exists (fun (s : Doc_paths.spec) -> not s.subtree) specs);
      Alcotest.(check bool) "has a subtree spec for names" true
        (List.exists
           (fun (s : Doc_paths.spec) ->
             s.subtree
             && List.exists (fun (_, t) -> t = Ast.Name_test "name") s.steps)
           specs)
  | None -> Alcotest.fail "should be analyzable"

let test_analysis_unsafe_on_reverse_axis () =
  match specs_for "d" "for $p in $d//person return $p/../@id" with
  | None -> ()
  | Some _ -> Alcotest.fail "parent axis must mark the source unsafe"

let test_projected_results_agree () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:50_000 () in
  let vars = [ ("auction", [ Item.Node doc ]) ] in
  List.iter
    (fun (name, q) ->
      let plain = Xqc.serialize (Xqc.eval_string ~variables:vars q) in
      let projected = Xqc.serialize (Xqc.eval_string ~project:true ~variables:vars q) in
      Alcotest.(check string) (name ^ " with projection") plain projected)
    Xqc_workload.Xmark_queries.all

let test_projection_prunes () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:100_000 () in
  let p = Xqc.prepare ~project:true (Xqc_workload.Xmark_queries.find "Q1") in
  match List.assoc_opt "auction" p.Xqc.projection with
  | Some (Some specs) ->
      let projected =
        Projection.project_specs Schema.empty
          (List.map
             (fun (sp : Doc_paths.spec) ->
               { Projection.steps = sp.steps; subtree = sp.subtree })
             specs)
          [ Item.Node doc ]
      in
      let size n = match n with [ Item.Node m ] -> Node.size m | _ -> 0 in
      Alcotest.(check bool) "projected doc under 20% of the original" true
        (float_of_int (size projected) < 0.2 *. float_of_int (Node.size doc))
  | _ -> Alcotest.fail "Q1's auction variable should be projectable"

let () =
  Alcotest.run "projection"
    [
      ("tree-project", tree_project_cases);
      ( "doc_paths",
        [
          Alcotest.test_case "analysis basics" `Quick test_analysis_basic;
          Alcotest.test_case "reverse axis unsafe" `Quick test_analysis_unsafe_on_reverse_axis;
          Alcotest.test_case "xmark results agree" `Slow test_projected_results_agree;
          Alcotest.test_case "pruning is substantial" `Quick test_projection_prunes;
        ] );
    ]
