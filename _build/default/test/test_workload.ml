(* Workload generators: determinism, size calibration, and the structural
   features the benchmark queries rely on. *)

module X = Xqc_workload.Xmark
module C = Xqc_workload.Clio
module N = Xqc.Node

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_elems name doc =
  List.length (List.filter (fun n -> N.name n = Some name) (N.descendants doc))

let test_deterministic () =
  let a = X.generate_string ~seed:5 ~target_bytes:30_000 () in
  let b = X.generate_string ~seed:5 ~target_bytes:30_000 () in
  check_bool "same seed, same document" true (String.equal a b);
  let c = X.generate_string ~seed:6 ~target_bytes:30_000 () in
  check_bool "different seed differs" true (not (String.equal a c))

let test_size_calibration () =
  List.iter
    (fun target ->
      let n = String.length (X.generate_string ~target_bytes:target ()) in
      let ratio = float_of_int n /. float_of_int target in
      if ratio < 0.6 || ratio > 1.6 then
        Alcotest.failf "size %d for target %d (ratio %.2f)" n target ratio)
    [ 100_000; 500_000 ]

let test_xmark_structure () =
  let doc = X.generate ~target_bytes:200_000 () in
  check_bool "has people" true (count_elems "person" doc > 10);
  check_bool "has closed auctions" true (count_elems "closed_auction" doc > 5);
  check_bool "has open auctions" true (count_elems "open_auction" doc > 5);
  check_bool "has items" true (count_elems "item" doc > 10);
  check_bool "six regions" true
    (List.for_all
       (fun r -> count_elems r doc = 1)
       [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ]);
  (* Q15/Q16 path must have matches: nested parlists under annotations *)
  let nested =
    Xqc.eval_string
      ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ]
      "count($auction/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword)"
  in
  check_bool "Q15 path nonempty" true (Xqc.serialize nested <> "0");
  (* buyers reference existing people *)
  let dangling =
    Xqc.eval_string
      ~variables:[ ("auction", [ Xqc.Item.Node doc ]) ]
      "count(for $t in $auction//closed_auction where empty($auction//person[@id = $t/buyer/@person]) return $t)"
  in
  Alcotest.(check string) "no dangling buyer refs" "0" (Xqc.serialize dangling)

let test_queries_parse () =
  List.iter
    (fun (name, q) ->
      match Xqc.prepare q with
      | _ -> ()
      | exception Xqc.Error m -> Alcotest.failf "%s does not compile: %s" name m)
    (Xqc_workload.Xmark_queries.all @ C.all)

let test_clio_structure () =
  let doc = C.generate ~target_bytes:50_000 () in
  check_bool "papers present" true (count_elems "inproceedings" doc > 20);
  check_bool "articles present" true (count_elems "article" doc > 5);
  (* author fan-out: some author appears on several papers *)
  let repeated =
    Xqc.eval_string
      ~variables:[ ("doc", [ Xqc.Item.Node doc ]) ]
      "max(for $a in distinct-values($doc/dblp/inproceedings/author/text()) return count($doc/dblp/inproceedings[author/text() = $a]))"
  in
  check_bool "some author has several papers" true
    (int_of_string (Xqc.serialize repeated) >= 2)

let test_all_queries_run_on_tiny_doc () =
  let xdoc = X.generate ~target_bytes:20_000 () in
  let vars = [ ("auction", [ Xqc.Item.Node xdoc ]) ] in
  List.iter
    (fun (name, q) ->
      match Xqc.eval_string ~variables:vars q with
      | _ -> ()
      | exception Xqc.Error m -> Alcotest.failf "XMark %s fails: %s" name m)
    Xqc_workload.Xmark_queries.all;
  let ddoc = C.generate ~target_bytes:10_000 () in
  let vars = [ ("doc", [ Xqc.Item.Node ddoc ]) ] in
  List.iter
    (fun (name, q) ->
      match Xqc.eval_string ~variables:vars q with
      | _ -> ()
      | exception Xqc.Error m -> Alcotest.failf "Clio %s fails: %s" name m)
    C.all

let test_prng () =
  let rng = Xqc_workload.Prng.create ~seed:1 () in
  let xs = List.init 1000 (fun _ -> Xqc_workload.Prng.int rng 10) in
  check_bool "in range" true (List.for_all (fun x -> x >= 0 && x < 10) xs);
  check_int "all buckets hit" 10 (List.length (List.sort_uniq compare xs));
  let rng2 = Xqc_workload.Prng.create ~seed:1 () in
  let ys = List.init 1000 (fun _ -> Xqc_workload.Prng.int rng2 10) in
  check_bool "deterministic" true (xs = ys)

(* Golden outputs: MD5 digests of every XMark query's serialized result
   on the seed-42 30KB document, pinning both the generator and the whole
   evaluation pipeline against silent regressions. *)
let golden =
  [
    ("Q1", "640d2e2c7644884b93afc916463b0558");
    ("Q2", "4821e10258d63d159ac108680a1726cb");
    ("Q3", "96aec1bb48aaf4f0d143318e2503e1dc");
    ("Q4", "d41d8cd98f00b204e9800998ecf8427e");
    ("Q5", "1679091c5a880faf6fb5e6087eb1b2dc");
    ("Q6", "9bf31c7ff062936a96d3c8bd1f8f2ff3");
    ("Q7", "7f39f8317fbdb1988ef4c628eba02591");
    ("Q8", "90a630616bed4499afdaa4d6cf9d7129");
    ("Q9", "6ae63177cd6fded7b71d36ad20e7e33a");
    ("Q10", "177829aa057daf41c4ee4a5d454207a4");
    ("Q11", "e36c5a511967ef77770a17b438d7d0cf");
    ("Q12", "a50348fc585dff28e662f26c41d996db");
    ("Q13", "ce0a519855ffe05e0dc768a604b2b5fc");
    ("Q14", "0ac14acac9f136f0ae77f4fcb705f7c5");
    ("Q15", "f132ffc4f9e4eb599f5dfd371f236c95");
    ("Q16", "590e64b09dd108e695234ab32ff212b9");
    ("Q17", "9452353372a2b268d3288619a0094ff7");
    ("Q18", "6933f5314310363b36ea7ebed7623072");
    ("Q19", "30cd4e51bdf46e9ce1b58d75836bd710");
    ("Q20", "df00901c874c52c990895b9891951188");
  ]

let test_golden_outputs () =
  let doc = X.generate ~seed:42 ~target_bytes:30_000 () in
  let vars = [ ("auction", [ Xqc.Item.Node doc ]) ] in
  List.iter
    (fun (name, expected) ->
      let r = Xqc.serialize (Xqc.eval_string ~variables:vars (Xqc_workload.Xmark_queries.find name)) in
      Alcotest.(check string) name expected (Digest.to_hex (Digest.string r)))
    golden

let () =
  Alcotest.run "workload"
    [
      ( "xmark",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "size calibration" `Quick test_size_calibration;
          Alcotest.test_case "structure" `Quick test_xmark_structure;
          Alcotest.test_case "queries compile" `Quick test_queries_parse;
          Alcotest.test_case "queries run" `Slow test_all_queries_run_on_tiny_doc;
        ] );
      ("clio", [ Alcotest.test_case "structure" `Quick test_clio_structure ]);
      ("golden", [ Alcotest.test_case "xmark digests (seed 42)" `Quick test_golden_outputs ]);
      ("prng", [ Alcotest.test_case "uniform and deterministic" `Quick test_prng ]);
    ]
