test/test_groupby.ml: Alcotest Algebra Array Ast Atomic Dynamic_ctx Eval Item List Node String Xqc
