test/test_projection.ml: Alcotest Ast Doc_paths Item List Node Normalize Projection Schema Seqtype Serializer Xqc Xqc_workload
