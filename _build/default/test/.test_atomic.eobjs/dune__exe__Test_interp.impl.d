test/test_interp.ml: Alcotest Core_ast Indexed Interp Item List Normalize Xqc
