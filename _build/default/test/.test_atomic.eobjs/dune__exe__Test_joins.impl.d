test/test_joins.ml: Alcotest Array Atomic Float Item Joins List Promotion QCheck QCheck_alcotest Xqc
