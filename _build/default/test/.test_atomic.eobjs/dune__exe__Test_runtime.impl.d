test/test_runtime.ml: Alcotest Algebra Array Ast Atomic Dynamic_ctx Eval Filename Item List Node Seqtype Serializer Sys Xqc
