test/test_xq_parser.mli:
