test/test_compile.ml: Alcotest Algebra Ast Atomic Compile List Pretty String Xqc
