test/test_equivalence.mli:
