test/test_workload.ml: Alcotest Digest List String Xqc Xqc_workload
