test/test_builtins.mli:
