test/test_atomic.ml: Alcotest Float List QCheck QCheck_alcotest Xqc
