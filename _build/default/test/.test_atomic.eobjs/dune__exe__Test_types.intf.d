test/test_types.mli:
