test/test_use_cases.ml: Alcotest List String Xqc
