test/test_projection.mli:
