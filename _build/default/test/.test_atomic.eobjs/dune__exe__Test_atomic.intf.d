test/test_atomic.mli:
