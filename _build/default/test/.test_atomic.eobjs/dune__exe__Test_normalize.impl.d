test/test_normalize.ml: Alcotest Ast Atomic Core_ast List Normalize Option QCheck QCheck_alcotest Xqc
