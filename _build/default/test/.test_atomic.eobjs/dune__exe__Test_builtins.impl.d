test/test_builtins.ml: Alcotest List Xqc
