test/test_static_type.mli:
