test/test_eval.ml: Alcotest List Xqc
