test/test_xml.ml: Alcotest List Option QCheck QCheck_alcotest String Xqc
