test/test_use_cases.mli:
