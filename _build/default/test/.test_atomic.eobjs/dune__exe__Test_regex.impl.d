test/test_regex.ml: Alcotest String Xqc
