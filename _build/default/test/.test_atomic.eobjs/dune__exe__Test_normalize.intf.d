test/test_normalize.mli:
