test/test_types.ml: Alcotest List Option QCheck QCheck_alcotest String Xqc
