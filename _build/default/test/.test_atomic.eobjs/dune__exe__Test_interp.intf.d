test/test_interp.mli:
