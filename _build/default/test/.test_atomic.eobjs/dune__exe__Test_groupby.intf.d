test/test_groupby.mli:
