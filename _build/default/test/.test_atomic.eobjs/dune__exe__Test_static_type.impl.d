test/test_static_type.ml: Alcotest Algebra Ast Atomic List Pretty Seqtype String Xqc Xqc_optimizer
