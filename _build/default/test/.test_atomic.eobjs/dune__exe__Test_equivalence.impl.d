test/test_equivalence.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Xqc Xqc_workload
