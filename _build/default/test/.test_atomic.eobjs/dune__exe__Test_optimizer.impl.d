test/test_optimizer.ml: Alcotest Algebra Compile List Pretty Promotion Rewrite String Xqc Xqc_workload
