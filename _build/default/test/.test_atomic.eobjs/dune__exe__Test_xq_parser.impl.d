test/test_xq_parser.ml: Alcotest Ast Atomic List Printf Seqtype Xq_parser Xqc
