(* Normalization to the XQuery Core: FLWOR preservation, path and
   predicate normalization, typeswitch renaming, alpha-renaming. *)

open Xqc
open Core_ast

let norm s = (Normalize.normalize_string s).cq_main
let check_bool = Alcotest.(check bool)

let rec collect_calls (e : cexpr) : string list =
  match e with
  | C_call (f, args) -> f :: List.concat_map collect_calls args
  | C_seq (a, b) -> collect_calls a @ collect_calls b
  | C_elem (_, c) | C_attr (_, c) | C_text c | C_comment c | C_pi (_, c) ->
      collect_calls c
  | C_if (a, b, c) -> collect_calls a @ collect_calls b @ collect_calls c
  | C_flwor (clauses, orders, ret) ->
      List.concat_map
        (function
          | CC_for { source; _ } -> collect_calls source
          | CC_let { value; _ } -> collect_calls value
          | CC_where w -> collect_calls w)
        clauses
      @ List.concat_map (fun o -> collect_calls o.ckey) orders
      @ collect_calls ret
  | C_quant (_, _, s, b) -> collect_calls s @ collect_calls b
  | C_typeswitch (_, s, cases, d) ->
      collect_calls s @ List.concat_map (fun (_, b) -> collect_calls b) cases
      @ collect_calls d
  | C_treejoin (_, _, i) -> collect_calls i
  | C_instance_of (c, _) | C_typeassert (c, _) | C_cast (c, _, _)
  | C_castable (c, _, _) | C_validate c ->
      collect_calls c
  | C_empty | C_scalar _ | C_var _ -> []

let rec bound_vars (e : cexpr) : string list =
  match e with
  | C_flwor (clauses, orders, ret) ->
      List.concat_map
        (function
          | CC_for { var; at_var; source; _ } ->
              (var :: Option.to_list at_var) @ bound_vars source
          | CC_let { var; value; _ } -> var :: bound_vars value
          | CC_where w -> bound_vars w)
        clauses
      @ List.concat_map (fun o -> bound_vars o.ckey) orders
      @ bound_vars ret
  | C_quant (_, v, s, b) -> (v :: bound_vars s) @ bound_vars b
  | C_typeswitch (v, s, cases, d) ->
      (v :: bound_vars s)
      @ List.concat_map (fun (_, b) -> bound_vars b) cases
      @ bound_vars d
  | C_seq (a, b) -> bound_vars a @ bound_vars b
  | C_elem (_, c) | C_attr (_, c) | C_text c | C_comment c | C_pi (_, c) ->
      bound_vars c
  | C_if (a, b, c) -> bound_vars a @ bound_vars b @ bound_vars c
  | C_call (_, args) -> List.concat_map bound_vars args
  | C_treejoin (_, _, i) -> bound_vars i
  | C_instance_of (c, _) | C_typeassert (c, _) | C_cast (c, _, _)
  | C_castable (c, _, _) | C_validate c ->
      bound_vars c
  | C_empty | C_scalar _ | C_var _ -> []

let test_simple_path () =
  match norm "$d/a/b" with
  | C_treejoin (Ast.Child, Ast.Name_test "b", C_treejoin (Ast.Child, Ast.Name_test "a", C_var "d"))
    -> ()
  | other -> Alcotest.failf "unexpected core: %s" (to_string other)

let test_positional_predicate () =
  (* $d/a[2] -> a FLWOR with an at-variable and a position test *)
  match norm "$d/a[2]" with
  | C_flwor
      ( [ CC_for { at_var = Some _; source = C_treejoin _; _ }; CC_where (C_call ("op:eq", _)) ],
        [],
        C_var _ ) ->
      ()
  | other -> Alcotest.failf "unexpected core: %s" (to_string other)

let test_boolean_predicate_has_no_position () =
  (* a statically boolean predicate must not introduce the positional
     machinery (this is what enables join detection through predicates) *)
  match norm "$d/a[@id = \"x\"]" with
  | C_flwor ([ CC_for { at_var = None; _ }; CC_where _ ], [], C_var _) -> ()
  | other -> Alcotest.failf "unexpected core: %s" (to_string other)

let test_last_predicate () =
  (* a last() predicate let-binds the sequence and its count *)
  match norm "$d/a[last()]" with
  | C_flwor (CC_let _ :: CC_let { value = C_call ("fn:count", _); _ } :: CC_for _ :: CC_where _ :: [], [], _)
    -> ()
  | other -> Alcotest.failf "unexpected core: %s" (to_string other)

let test_general_comparison () =
  check_bool "= becomes op:general-eq" true
    (List.mem "op:general-eq" (collect_calls (norm "$a = $b")));
  check_bool "lt becomes op:lt" true (List.mem "op:lt" (collect_calls (norm "$a lt $b")));
  check_bool "arith" true (List.mem "op:add" (collect_calls (norm "1 + 2")))

let test_and_or_desugar () =
  (match norm "$a and $b" with
  | C_if (C_call ("fn:boolean", _), C_call ("fn:boolean", _), C_scalar (Atomic.Boolean false))
    -> ()
  | other -> Alcotest.failf "and: %s" (to_string other));
  match norm "$a or $b" with
  | C_if (_, C_scalar (Atomic.Boolean true), _) -> ()
  | other -> Alcotest.failf "or: %s" (to_string other)

let test_alpha_renaming () =
  (* shadowed variables get distinct core names *)
  let core = norm "for $x in (1,2) return (for $x in (3,4) return $x)" in
  let bound = bound_vars core in
  Alcotest.(check int) "two distinct binders" 2 (List.length (List.sort_uniq compare bound))

let test_typeswitch_common_var () =
  match norm "typeswitch ($v) case $a as xs:integer return $a case $b as xs:string return $b default $d return $d" with
  | C_typeswitch (x, C_var "v", [ (_, C_var x1); (_, C_var x2) ], C_var x3) ->
      check_bool "all branches share the common variable" true
        (x = x1 && x1 = x2 && x2 = x3)
  | other -> Alcotest.failf "typeswitch: %s" (to_string other)

let test_builtin_prefixing () =
  check_bool "count becomes fn:count" true
    (List.mem "fn:count" (collect_calls (norm "count((1,2))")));
  let q = Normalize.normalize_string "declare function local:f($x) { $x }; local:f(1)" in
  check_bool "user function kept" true (List.mem "local:f" (collect_calls q.cq_main))

let test_free_vars () =
  let core = norm "for $x in $src return ($x, $other)" in
  let fv = List.sort_uniq compare (free_vars core) in
  Alcotest.(check (list string)) "free variables" [ "other"; "src" ] fv

let test_avt () =
  let calls = collect_calls (norm "<a b=\"x{1+1}y\"/>") in
  check_bool "avt pieces stringified and concatenated" true
    (List.mem "fn:concat" calls && List.mem "fs:item-sequence-to-string" calls)

let test_quantifier () =
  match norm "some $x in $s satisfies $x > 1" with
  | C_quant (Ast.Some_quant, _, C_var "s", C_call ("fn:boolean", _)) -> ()
  | other -> Alcotest.failf "quantifier: %s" (to_string other)

let test_boundary_whitespace () =
  (* whitespace-only text between constructor children is stripped *)
  match norm "<a> <b/> </a>" with
  | C_elem ("a", C_elem ("b", C_empty)) -> ()
  | other -> Alcotest.failf "boundary ws: %s" (to_string other)

let test_context_errors () =
  let fails s =
    match Normalize.normalize_string s with
    | exception Normalize.Norm_error _ -> true
    | _ -> false
  in
  check_bool "bare . at top level" true (fails ".");
  check_bool "position() outside predicate" true (fails "position()");
  check_bool "last() outside predicate" true (fails "last()")

(* qcheck: normalization never produces two binders with the same name. *)
let gen_query =
  QCheck.Gen.(
    oneofl
      [
        "for $x in (1,2,3) return $x + 1";
        "for $x in $s, $y in $s where $x = $y return ($x, $y)";
        "for $x in (1,2) return for $x in (3,4) return $x";
        "let $a := (for $b in $s return $b) return count($a)";
        "$d/a/b[2]/c[@id = \"k\"]";
        "some $v in (1,2) satisfies every $v in (3,4) satisfies $v > 2";
      ])

let prop_unique_binders =
  QCheck.Test.make ~name:"alpha renaming yields unique binders" ~count:50
    (QCheck.make gen_query) (fun q ->
      let bound = bound_vars (norm q) in
      List.length bound = List.length (List.sort_uniq compare bound))

let () =
  Alcotest.run "normalize"
    [
      ( "paths",
        [
          Alcotest.test_case "simple path" `Quick test_simple_path;
          Alcotest.test_case "positional predicate" `Quick test_positional_predicate;
          Alcotest.test_case "boolean predicate" `Quick test_boolean_predicate_has_no_position;
          Alcotest.test_case "last() predicate" `Quick test_last_predicate;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "general comparison" `Quick test_general_comparison;
          Alcotest.test_case "and/or desugar" `Quick test_and_or_desugar;
          Alcotest.test_case "alpha renaming" `Quick test_alpha_renaming;
          Alcotest.test_case "typeswitch common var" `Quick test_typeswitch_common_var;
          Alcotest.test_case "builtin prefixing" `Quick test_builtin_prefixing;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "avt" `Quick test_avt;
          Alcotest.test_case "quantifier" `Quick test_quantifier;
          Alcotest.test_case "boundary whitespace" `Quick test_boundary_whitespace;
          Alcotest.test_case "context errors" `Quick test_context_errors;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_unique_binders ]);
    ]
