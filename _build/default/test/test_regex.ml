(* The XQuery-to-Str regex translator behind fn:matches / fn:replace /
   fn:tokenize. *)

module R = Xqc.Regex

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check string)

let m pat s = R.matches (R.compile pat) s

let test_literals () =
  check_bool "plain" true (m "abc" "xxabcxx");
  check_bool "no match" false (m "abc" "abd");
  check_bool "unanchored" true (m "b" "abc")

let test_metacharacters () =
  check_bool "dot" true (m "a.c" "abc");
  check_bool "star" true (m "ab*c" "ac");
  check_bool "plus" true (m "ab+c" "abbc");
  check_bool "plus needs one" false (m "ab+c" "ac");
  check_bool "question" true (m "ab?c" "ac");
  check_bool "anchors" true (m "^abc$" "abc");
  check_bool "anchored mismatch" false (m "^abc$" "xabc")

let test_alternation_grouping () =
  check_bool "alternation" true (m "cat|dog" "hotdog");
  check_bool "group with star" true (m "(ab)+" "ababab");
  check_bool "group alternation" true (m "(a|b)c" "bc")

let test_classes () =
  check_bool "range" true (m "[a-f]+" "face");
  check_bool "negated" true (m "[^0-9]" "a");
  check_bool "negated no match" false (m "[^abc]" "abc");
  check_bool "digit escape" true (m "\\d\\d" "42");
  check_bool "word escape" true (m "\\w+" "ab_1");
  check_bool "space escape" true (m "a\\sb" "a b");
  check_bool "negated digit" true (m "\\D" "x");
  check_bool "class with escape" true (m "[\\d-]+" "1-2")

let test_escaped_literals () =
  check_bool "escaped dot" true (m "a\\.b" "a.b");
  check_bool "escaped dot no wildcard" false (m "a\\.b" "axb");
  check_bool "escaped plus" true (m "1\\+2" "1+2");
  check_bool "escaped paren" true (m "\\(x\\)" "(x)");
  check_bool "escaped brace" true (m "a\\{b" "a{b");
  check_bool "escaped backslash" true (m "a\\\\b" "a\\b")

let test_quantified_braces () =
  check_bool "exact count" true (m "^a{3}$" "aaa");
  check_bool "exact count fails" false (m "^a{3}$" "aa");
  check_bool "range count" true (m "^a{2,3}$" "aaa")

let test_replace_and_split () =
  check "replace all" "X.X.X" (R.replace (R.compile "a+") ~by:"X" "a.aa.aaa");
  check "split" "a|b|c" (String.concat "|" (R.split (R.compile ",") "a,b,c"));
  check "split keeps empties" "a||b" (String.concat "|" (R.split (R.compile ",") "a,,b"))

let test_unsupported () =
  check_bool "backreference rejected" true
    (match R.compile "(a)\\1" with
    | exception R.Unsupported _ -> true
    | _ -> false)

let () =
  Alcotest.run "regex"
    [
      ( "translate",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "metacharacters" `Quick test_metacharacters;
          Alcotest.test_case "alternation/grouping" `Quick test_alternation_grouping;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "escaped literals" `Quick test_escaped_literals;
          Alcotest.test_case "brace quantifiers" `Quick test_quantified_braces;
          Alcotest.test_case "replace/split" `Quick test_replace_and_split;
          Alcotest.test_case "unsupported" `Quick test_unsupported;
        ] );
    ]
