(* XQuery surface parser: AST shapes, operator precedence, constructors,
   prolog declarations, and syntax errors. *)

open Xqc

let parse = Xq_parser.parse_expression
let check_bool = Alcotest.(check bool)

let fails s =
  match Xq_parser.parse_query s with
  | exception Xq_parser.Syntax_error _ -> true
  | _ -> false

let test_literals () =
  (match parse "42" with
  | Ast.Literal (Atomic.Integer 42) -> ()
  | _ -> Alcotest.fail "integer literal");
  (match parse "3.14" with
  | Ast.Literal (Atomic.Decimal _) -> ()
  | _ -> Alcotest.fail "decimal literal");
  (match parse "1e3" with
  | Ast.Literal (Atomic.Double 1000.0) -> ()
  | _ -> Alcotest.fail "double literal");
  (match parse {|"a""b"|} with
  | Ast.Literal (Atomic.String {|a"b|}) -> ()
  | _ -> Alcotest.fail "doubled quote escape");
  match parse "'x'" with
  | Ast.Literal (Atomic.String "x") -> ()
  | _ -> Alcotest.fail "single quoted"

let test_precedence () =
  (match parse "1 + 2 * 3" with
  | Ast.Arith (Ast.Add, Ast.Literal (Atomic.Integer 1), Ast.Arith (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse "1 = 2 + 3" with
  | Ast.General_comp (Ast.Gen_eq, _, Ast.Arith (Ast.Add, _, _)) -> ()
  | _ -> Alcotest.fail "add binds tighter than =");
  (match parse "$a or $b and $c" with
  | Ast.Or_expr (Ast.Var "a", Ast.And_expr (Ast.Var "b", Ast.Var "c")) -> ()
  | _ -> Alcotest.fail "and binds tighter than or");
  (match parse "1 to 5" with
  | Ast.Range (_, _) -> ()
  | _ -> Alcotest.fail "range");
  match parse "-1 + 2" with
  | Ast.Arith (Ast.Add, Ast.Unary_minus _, _) -> ()
  | _ -> Alcotest.fail "unary minus"

let test_comparisons () =
  let ops =
    [ ("=", `G Ast.Gen_eq); ("!=", `G Ast.Gen_ne); ("<", `G Ast.Gen_lt);
      ("<=", `G Ast.Gen_le); (">", `G Ast.Gen_gt); (">=", `G Ast.Gen_ge);
      ("eq", `V Ast.Val_eq); ("lt", `V Ast.Val_lt); ("is", `N Ast.Node_is);
      ("<<", `N Ast.Node_before); (">>", `N Ast.Node_after) ]
  in
  List.iter
    (fun (sym, expected) ->
      match (parse (Printf.sprintf "$a %s $b" sym), expected) with
      | Ast.General_comp (g, _, _), `G g' when g = g' -> ()
      | Ast.Value_comp (v, _, _), `V v' when v = v' -> ()
      | Ast.Node_comp (n, _, _), `N n' when n = n' -> ()
      | _ -> Alcotest.failf "comparison %s" sym)
    ops

let test_paths () =
  (match parse "$d/a/b" with
  | Ast.Path (Ast.Var "d", [ s1; s2 ]) ->
      check_bool "names" true (s1.Ast.test = Ast.Name_test "a" && s2.Ast.test = Ast.Name_test "b")
  | _ -> Alcotest.fail "two steps");
  (match parse "$d//b" with
  | Ast.Path (Ast.Var "d", [ dos; _ ]) ->
      check_bool "descendant-or-self inserted" true (dos.Ast.axis = Ast.Descendant_or_self)
  | _ -> Alcotest.fail "//");
  (match parse "$d/@id" with
  | Ast.Path (_, [ s ]) -> check_bool "attribute axis" true (s.Ast.axis = Ast.Attribute_axis)
  | _ -> Alcotest.fail "@");
  (match parse "$d/a[2]/text()" with
  | Ast.Path (_, [ a; t ]) ->
      check_bool "predicate count" true (List.length a.Ast.predicates = 1);
      check_bool "text() kind test" true (t.Ast.test = Ast.Kind_test Seqtype.It_text)
  | _ -> Alcotest.fail "predicate and kind test");
  (match parse "$d/ancestor::x" with
  | Ast.Path (_, [ s ]) -> check_bool "explicit axis" true (s.Ast.axis = Ast.Ancestor)
  | _ -> Alcotest.fail "ancestor axis");
  (match parse "$d/.." with
  | Ast.Path (_, [ s ]) -> check_bool "parent step" true (s.Ast.axis = Ast.Parent)
  | _ -> Alcotest.fail "..");
  match parse "$d/element(x, T)" with
  | Ast.Path (_, [ s ]) ->
      check_bool "element kind test with type" true
        (s.Ast.test = Ast.Kind_test (Seqtype.It_element (Some "x", Some "T")))
  | _ -> Alcotest.fail "element() kind test"

let test_flwor () =
  match parse "for $x at $i in $s, $y in $t let $z := $x where $i > 1 order by $z descending return ($x, $z)" with
  | Ast.Flwor (clauses, [ spec ], Ast.Sequence_expr [ _; _ ]) ->
      check_bool "clause count" true (List.length clauses = 4);
      (match clauses with
      | Ast.For_clause { var = "x"; at_var = Some "i"; _ }
        :: Ast.For_clause { var = "y"; at_var = None; _ }
        :: Ast.Let_clause { var = "z"; _ }
        :: Ast.Where_clause _ :: [] -> ()
      | _ -> Alcotest.fail "clause shapes");
      check_bool "descending" true (spec.Ast.dir = Ast.Descending)
  | _ -> Alcotest.fail "flwor shape"

let test_constructors () =
  (match parse "<a x=\"1\">hi{$v}</a>" with
  | Ast.Elem_constructor ("a", [ ("x", Ast.Attr_parts [ Ast.Attr_text "1" ]) ], content)
    ->
      check_bool "content pieces" true
        (match content with
        | [ Ast.Text_content "hi"; Ast.Enclosed (Ast.Var "v") ] -> true
        | _ -> false)
  | _ -> Alcotest.fail "direct constructor");
  (match parse {|<a b="x{$y}z"/>|} with
  | Ast.Elem_constructor (_, [ (_, Ast.Attr_parts [ Ast.Attr_text "x"; Ast.Attr_expr _; Ast.Attr_text "z" ]) ], [])
    -> ()
  | _ -> Alcotest.fail "attribute value template");
  (match parse "<a>{{literal}}</a>" with
  | Ast.Elem_constructor (_, _, [ Ast.Text_content "{literal}" ]) -> ()
  | _ -> Alcotest.fail "brace escapes");
  match parse "text { $v }" with
  | Ast.Text_constructor (Ast.Var "v") -> ()
  | _ -> Alcotest.fail "computed text"

let test_big_expressions () =
  (match parse "some $x in $s, $y in $t satisfies $x = $y" with
  | Ast.Quantified (Ast.Some_quant, [ ("x", _); ("y", _) ], _) -> ()
  | _ -> Alcotest.fail "quantified");
  (match parse "typeswitch ($x) case $a as element(b) return $a default return ()" with
  | Ast.Typeswitch (_, [ { Ast.case_var = Some "a"; _ } ], (None, _)) -> ()
  | _ -> Alcotest.fail "typeswitch");
  (match parse "$x instance of xs:integer+" with
  | Ast.Instance_of (_, Seqtype.Occ (Seqtype.It_atomic Atomic.T_integer, Seqtype.One_or_more)) -> ()
  | _ -> Alcotest.fail "instance of");
  (match parse "$x cast as xs:double?" with
  | Ast.Cast_as (_, Atomic.T_double, true) -> ()
  | _ -> Alcotest.fail "cast as");
  (match parse "validate { $x }" with
  | Ast.Validate_expr _ -> ()
  | _ -> Alcotest.fail "validate");
  match parse "$a union $b | $c" with
  | Ast.Union_expr (Ast.Union_expr _, _) -> ()
  | _ -> Alcotest.fail "union chain"

let test_prolog () =
  let q =
    Xq_parser.parse_query
      "declare variable $g := 10; declare function local:f($x as xs:integer) as xs:integer { $x + $g }; local:f(1)"
  in
  (match q.Ast.prolog with
  | [ Ast.Variable_decl ("g", _); Ast.Function_decl f ] ->
      check_bool "fn name" true (f.Ast.fname = "local:f");
      check_bool "param typed" true
        (match f.Ast.params with [ ("x", Some _) ] -> true | _ -> false)
  | _ -> Alcotest.fail "prolog shape");
  match q.Ast.main with
  | Ast.Call ("local:f", [ _ ]) -> ()
  | _ -> Alcotest.fail "main call"

let test_comments_and_ws () =
  (match parse "(: a (: nested :) comment :) 1" with
  | Ast.Literal (Atomic.Integer 1) -> ()
  | _ -> Alcotest.fail "comments skipped");
  match parse "  1  " with
  | Ast.Literal (Atomic.Integer 1) -> ()
  | _ -> Alcotest.fail "whitespace"

let test_errors () =
  check_bool "unbalanced paren" true (fails "(1");
  check_bool "missing return" true (fails "for $x in $s");
  check_bool "unterminated string" true (fails "\"abc");
  check_bool "unterminated constructor" true (fails "<a>");
  check_bool "mismatched constructor" true (fails "<a></b>");
  check_bool "unknown type" true (fails "$x cast as xs:nosuch")

let () =
  Alcotest.run "xq_parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "flwor" `Quick test_flwor;
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "big expressions" `Quick test_big_expressions;
          Alcotest.test_case "prolog" `Quick test_prolog;
          Alcotest.test_case "comments" `Quick test_comments_and_ws;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
