(* Static type inference and the type-driven plan simplification
   (Section 6's "static type analysis can improve our algorithm"). *)

open Xqc
open Algebra
module S = Xqc_optimizer.Static_type

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let infer p = S.infer S.top_env p

let test_infer_basics () =
  check_bool "integer scalar" true ((infer (Scalar (Atomic.Integer 1))).S.kind = S.AK_integer);
  check_bool "element constructor" true ((infer (Element ("a", Empty))).S.kind = S.AK_element);
  check_bool "count is integer" true
    ((infer (Call ("fn:count", [ Empty ]))).S.kind = S.AK_integer);
  check_bool "boolean comparison" true
    ((infer (Call ("op:general-eq", [ Empty; Empty ]))).S.kind = S.AK_boolean);
  check_bool "text step" true
    ((infer (TreeJoin (Ast.Child, Ast.Kind_test Seqtype.It_text, Input))).S.kind = S.AK_text);
  check_bool "unknown for field access" true ((infer (FieldAccess "q")).S.kind = S.AK_item)

let test_infer_occurrences () =
  let t = infer (Seq (Scalar (Atomic.Integer 1), Scalar (Atomic.Integer 2))) in
  check_int "seq lo" 2 t.S.occ.S.lo;
  check_bool "seq hi" true (t.S.occ.S.hi = Some 2);
  let t = infer Empty in
  check_bool "empty" true (t.S.occ.S.hi = Some 0)

let test_matches_judgments () =
  let int_one = infer (Scalar (Atomic.Integer 1)) in
  check_bool "integer matches xs:integer" true
    (S.definitely_matches int_one (Seqtype.item (Seqtype.It_atomic Atomic.T_integer)));
  check_bool "integer matches xs:decimal" true
    (S.definitely_matches int_one (Seqtype.item (Seqtype.It_atomic Atomic.T_decimal)));
  check_bool "integer mismatches element()" true
    (S.definitely_mismatches int_one (Seqtype.item (Seqtype.It_element (None, None))));
  check_bool "unknown neither matches nor mismatches" true
    (let u = infer (FieldAccess "q") in
     (not (S.definitely_matches u (Seqtype.item (Seqtype.It_atomic Atomic.T_integer))))
     && not (S.definitely_mismatches u (Seqtype.item (Seqtype.It_atomic Atomic.T_integer))));
  (* nominal element types stay dynamic: never provable statically *)
  check_bool "typed element test stays dynamic" true
    (not
       (S.definitely_matches
          (infer (Element ("a", Empty)))
          (Seqtype.item (Seqtype.It_element (None, Some "T")))))

let count name p =
  List.length (List.filter (String.equal name) (Pretty.operator_names p))

let optimized q =
  match (Xqc.prepare q).Xqc.plan with Some p -> p | None -> Alcotest.fail "no plan"

let test_typeswitch_pruning () =
  let p =
    optimized
      "typeswitch (<a/>) case $i as xs:integer return 1 case $e as element() return 2 default return 3"
  in
  check_int "no dynamic type tests left" 0 (count "TypeMatches" p);
  check_int "no conditionals left" 0 (count "Cond" p);
  Alcotest.(check string) "result" "2" (Xqc.serialize (Xqc.eval_string
    "typeswitch (<a/>) case $i as xs:integer return 1 case $e as element() return 2 default return 3"))

let test_typeassert_elimination () =
  let p = optimized "for $x as element() in (<a/>, <b/>) return name($x)" in
  check_int "as-clause assert removed" 0 (count "TypeAssert" p);
  (* an unprovable assert stays *)
  let p2 = optimized "for $x as xs:integer in $unknown return $x" in
  check_int "unprovable assert kept" 1 (count "TypeAssert" p2)

let test_instance_of_folding () =
  let p = optimized "(1, 2) instance of xs:integer+" in
  check_int "folded to a constant" 0 (count "TypeMatches" p);
  Alcotest.(check string) "still true" "true"
    (Xqc.serialize (Xqc.eval_string "(1, 2) instance of xs:integer+"))

let test_simplification_preserves_semantics () =
  (* queries whose typeswitch/instance-of results must be unchanged *)
  List.iter
    (fun q ->
      let with_types = Xqc.serialize (Xqc.eval_string ~strategy:Xqc.Optimized q) in
      let without = Xqc.serialize (Xqc.eval_string ~strategy:Xqc.No_algebra q) in
      Alcotest.(check string) q without with_types)
    [
      "typeswitch (42) case $s as xs:string return 0 default return 1";
      "for $x in (1, \"a\", <e/>) return (typeswitch ($x) case $i as xs:integer return \"i\" case $e as element() return \"e\" default return \"o\")";
      "(<a/> instance of element(), 1 instance of xs:string)";
      "for $x as xs:integer* in (1,2,3) return $x + 1";
    ]

let () =
  Alcotest.run "static_type"
    [
      ( "inference",
        [
          Alcotest.test_case "basics" `Quick test_infer_basics;
          Alcotest.test_case "occurrences" `Quick test_infer_occurrences;
          Alcotest.test_case "judgments" `Quick test_matches_judgments;
        ] );
      ( "simplification",
        [
          Alcotest.test_case "typeswitch pruning" `Quick test_typeswitch_pruning;
          Alcotest.test_case "typeassert elimination" `Quick test_typeassert_elimination;
          Alcotest.test_case "instance-of folding" `Quick test_instance_of_folding;
          Alcotest.test_case "semantics preserved" `Quick test_simplification_preserves_semantics;
        ] );
    ]
