(* The Section 6 join algorithms: the Figure 6 hash join (typed
   (value,type) keys, Table 2 compatibility filter, order restoration,
   existential de-duplication) and the sort join for inequalities. *)

open Xqc
module A = Atomic
module J = Joins

let check_int = Alcotest.(check int)

(* tuples are one-field arrays holding a key sequence and a payload int *)
let tup keys payload : J.tuple =
  [| List.map (fun a -> Item.Atom a) keys; [ Item.Atom (A.Integer payload) ] |]

let payload (t : J.tuple) : int =
  match t.(1) with [ Item.Atom (A.Integer i) ] -> i | _ -> -1

let key_of (t : J.tuple) = t.(0)

let probe index keys = List.map payload (J.probe_hash_index index (keys))

let test_basic_hash_match () =
  let inner = [ tup [ A.Integer 1 ] 10; tup [ A.Integer 2 ] 20; tup [ A.Integer 1 ] 30 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "all matches in inner order" [ 10; 30 ] (probe ix [ A.Integer 1 ]);
  Alcotest.(check (list int)) "single" [ 20 ] (probe ix [ A.Integer 2 ]);
  Alcotest.(check (list int)) "no match" [] (probe ix [ A.Integer 9 ])

let test_untyped_vs_numeric () =
  (* untyped "42" must match integer 42 under the double comparison *)
  let inner = [ tup [ A.Untyped "42" ] 1; tup [ A.Untyped "42.0" ] 2 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "both lexical forms match numerically" [ 1; 2 ]
    (probe ix [ A.Integer 42 ]);
  (* but an untyped probe compares as string against untyped entries *)
  Alcotest.(check (list int)) "string semantics for untyped pair" [ 1 ]
    (probe ix [ A.Untyped "42" ])

let test_table2_filter () =
  (* typed string "42" and integer 42 are incomparable (err:XPTY0004):
     the Table 2 check must reject the pair even though promotions of
     other keys share buckets *)
  let inner = [ tup [ A.String "42" ] 1; tup [ A.Integer 42 ] 2 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "integer probe sees only the integer" [ 2 ]
    (probe ix [ A.Integer 42 ]);
  Alcotest.(check (list int)) "string probe sees only the string" [ 1 ]
    (probe ix [ A.String "42" ]);
  Alcotest.(check (list int)) "untyped probe sees both (string + double rows of Table 2)"
    [ 1; 2 ] (probe ix [ A.Untyped "42" ])

let test_existential_dedup () =
  (* a tuple whose key sequence matches twice is reported once *)
  let inner = [ tup [ A.Integer 1; A.Integer 2 ] 7 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "dedup inner multi-keys" [ 7 ] (probe ix [ A.Integer 1; A.Integer 2 ]);
  Alcotest.(check (list int)) "dedup across probe keys" [ 7 ] (probe ix [ A.Integer 2; A.Integer 2 ])

let test_order_restored () =
  let inner = List.init 10 (fun i -> tup [ A.Integer (i mod 2) ] i) in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "even payloads ascending" [ 0; 2; 4; 6; 8 ]
    (probe ix [ A.Integer 0 ])

let test_numeric_promotion_equality () =
  let inner = [ tup [ A.Decimal 1.5 ] 1; tup [ A.Double 1.5 ] 2; tup [ A.Float 1.5 ] 3 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "decimal probe matches all numeric types" [ 1; 2; 3 ]
    (probe ix [ A.Decimal 1.5 ])

let test_anyuri_string () =
  let inner = [ tup [ A.Any_uri "http://x" ] 1 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "string probe matches anyURI" [ 1 ]
    (probe ix [ A.String "http://x" ])

let test_boolean_and_dates () =
  let inner = [ tup [ A.Boolean true ] 1; tup [ A.Other (A.T_date, "2006-01-01") ] 2 ] in
  let ix = J.build_hash_index inner key_of in
  Alcotest.(check (list int)) "boolean" [ 1 ] (probe ix [ A.Boolean true ]);
  Alcotest.(check (list int)) "date lexical" [ 2 ]
    (probe ix [ A.Other (A.T_date, "2006-01-01") ]);
  Alcotest.(check (list int)) "date vs time no match" []
    (probe ix [ A.Other (A.T_time, "2006-01-01") ])

let test_nan_never_matches () =
  let inner = [ tup [ A.Double Float.nan ] 1 ] in
  let ix = J.build_hash_index inner key_of in
  check_int "nan = nan is false" 0 (List.length (probe ix [ A.Double Float.nan ]))

(* ---------------- sort join ---------------- *)

let sort_probe op index keys = List.map payload (J.probe_sort_index op index keys)

let test_sort_numeric () =
  let inner = List.init 5 (fun i -> tup [ A.Integer (i + 1) ] (i + 1)) in
  let ix = J.build_sort_index inner key_of in
  Alcotest.(check (list int)) "x < y (suffix)" [ 4; 5 ]
    (sort_probe Promotion.Lt ix [ A.Integer 3 ]);
  Alcotest.(check (list int)) "x <= y" [ 3; 4; 5 ]
    (sort_probe Promotion.Le ix [ A.Integer 3 ]);
  Alcotest.(check (list int)) "x > y (prefix)" [ 1; 2 ]
    (sort_probe Promotion.Gt ix [ A.Integer 3 ]);
  Alcotest.(check (list int)) "x >= y" [ 1; 2; 3 ]
    (sort_probe Promotion.Ge ix [ A.Integer 3 ])

let test_sort_untyped_semantics () =
  (* untyped vs numeric compares as double; untyped vs untyped as string *)
  let inner = [ tup [ A.Untyped "10" ] 1; tup [ A.Integer 10 ] 2 ] in
  let ix = J.build_sort_index inner key_of in
  Alcotest.(check (list int)) "numeric probe 9 < both tens" [ 1; 2 ]
    (sort_probe Promotion.Lt ix [ A.Integer 9 ]);
  (* untyped "9" vs untyped "10": string order makes "10" < "9" *)
  Alcotest.(check (list int)) "untyped probe: string order vs untyped, double vs numeric"
    [ 2 ] (sort_probe Promotion.Lt ix [ A.Untyped "9" ])

let test_sort_existential () =
  let inner = [ tup [ A.Integer 5 ] 1; tup [ A.Integer 7 ] 2 ] in
  let ix = J.build_sort_index inner key_of in
  Alcotest.(check (list int)) "any probe key may match, dedup" [ 1; 2 ]
    (sort_probe Promotion.Lt ix [ A.Integer 4; A.Integer 6 ])

let test_sort_strings () =
  let inner = [ tup [ A.String "apple" ] 1; tup [ A.String "pear" ] 2 ] in
  let ix = J.build_sort_index inner key_of in
  Alcotest.(check (list int)) "banana < pear only" [ 2 ]
    (sort_probe Promotion.Lt ix [ A.String "banana" ]);
  Alcotest.(check (list int)) "zebra > both" [ 1; 2 ]
    (sort_probe Promotion.Gt ix [ A.String "zebra" ]);
  Alcotest.(check (list int)) "no numeric match for strings" []
    (sort_probe Promotion.Lt ix [ A.Integer 0 ])

(* The reference semantics for the join algorithms: pairwise comparison
   with per-pair error suppression.  Figure 6 deliberately turns "this
   pair of values is incomparable / does not cast" dynamic errors into
   non-matches, whereas general_compare raises on the first bad pair, so
   the NL reference must suppress errors pair by pair. *)
let pairwise op xs ys =
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          try Promotion.atomic_compare op x y
          with Promotion.Type_mismatch _ | A.Cast_error _ -> false)
        ys)
    xs

(* qcheck: hash probe equals the pairwise general-compare filter. *)
let atom_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> A.Integer i) (int_range (-5) 5);
        map (fun i -> A.Untyped (string_of_int i)) (int_range (-5) 5);
        map (fun f -> A.Double (Float.of_int f /. 2.0)) (int_range (-6) 6);
        map (fun s -> A.String s) (oneofl [ "a"; "b"; "1"; "2" ]);
        map (fun s -> A.Untyped s) (oneofl [ "a"; "b"; "x" ]);
      ])

let keys_gen = QCheck.Gen.(list_size (int_range 1 3) atom_gen)

let table_gen =
  QCheck.Gen.(
    list_size (int_range 0 12) keys_gen >>= fun keyss ->
    return (List.mapi (fun i ks -> tup ks i) keyss))

let prop_hash_equals_nl =
  QCheck.Test.make ~name:"hash join = NL general-compare filter" ~count:200
    (QCheck.make QCheck.Gen.(pair table_gen keys_gen))
    (fun (inner, probe_keys) ->
      let ix = J.build_hash_index inner key_of in
      let via_hash = probe ix probe_keys in
      let via_nl =
        List.filter_map
          (fun t ->
            if pairwise Promotion.Eq probe_keys (Item.atomize (key_of t)) then
              Some (payload t)
            else None)
          inner
      in
      via_hash = via_nl)

let prop_sort_equals_nl =
  QCheck.Test.make ~name:"sort join = NL general-compare filter" ~count:200
    (QCheck.make QCheck.Gen.(pair table_gen keys_gen))
    (fun (inner, probe_keys) ->
      let ix = J.build_sort_index inner key_of in
      List.for_all
        (fun op ->
          let via_sort = sort_probe op ix probe_keys in
          let via_nl =
            List.filter_map
              (fun t ->
                if pairwise op probe_keys (Item.atomize (key_of t)) then
                  Some (payload t)
                else None)
              inner
          in
          via_sort = via_nl)
        [ Promotion.Lt; Promotion.Le; Promotion.Gt; Promotion.Ge ])

let () =
  Alcotest.run "joins"
    [
      ( "hash join",
        [
          Alcotest.test_case "basic" `Quick test_basic_hash_match;
          Alcotest.test_case "untyped vs numeric" `Quick test_untyped_vs_numeric;
          Alcotest.test_case "Table 2 filter" `Quick test_table2_filter;
          Alcotest.test_case "existential dedup" `Quick test_existential_dedup;
          Alcotest.test_case "order restored" `Quick test_order_restored;
          Alcotest.test_case "numeric promotion" `Quick test_numeric_promotion_equality;
          Alcotest.test_case "anyURI/string" `Quick test_anyuri_string;
          Alcotest.test_case "boolean and dates" `Quick test_boolean_and_dates;
          Alcotest.test_case "NaN" `Quick test_nan_never_matches;
        ] );
      ( "sort join",
        [
          Alcotest.test_case "numeric ranges" `Quick test_sort_numeric;
          Alcotest.test_case "untyped semantics" `Quick test_sort_untyped_semantics;
          Alcotest.test_case "existential" `Quick test_sort_existential;
          Alcotest.test_case "strings" `Quick test_sort_strings;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_hash_equals_nl; prop_sort_equals_nl ] );
    ]
