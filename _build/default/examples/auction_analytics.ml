(* Auction-site analytics on an XMark document: the Section 2 motivating
   query (XMark Q8 — "how many items did each person buy?"), the 3-way
   join of Q9, and the inequality join of Q12 with the sort join.

     dune exec examples/auction_analytics.exe
*)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:500_000 () in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];

  let report name query =
    Printf.printf "--- %s ---\n" name;
    let nl = Xqc.prepare ~strategy:Xqc.Optimized_nl query in
    let opt = Xqc.prepare ~strategy:Xqc.Optimized query in
    let r_nl, t_nl = time (fun () -> Xqc.serialize (Xqc.run nl ctx)) in
    let r_opt, t_opt = time (fun () -> Xqc.serialize (Xqc.run opt ctx)) in
    assert (String.equal r_nl r_opt);
    Printf.printf "nested-loop %.3fs  xquery-join %.3fs  (%.0fx)\n" t_nl t_opt
      (t_nl /. t_opt);
    Printf.printf "result size %d bytes; preview: %s\n\n" (String.length r_opt)
      (String.sub r_opt 0 (min 120 (String.length r_opt)))
  in

  report "Q8: purchases per person (equi-join + group)"
    (Xqc_workload.Xmark_queries.q8);
  report "Q9: purchases with the European item names (3-way join)"
    (Xqc_workload.Xmark_queries.q9);
  report "Q12: expensive items per rich person (inequality -> sort join)"
    (Xqc_workload.Xmark_queries.q12);

  (* Ad-hoc analytics through the same API. *)
  let top_categories =
    Xqc.run
      (Xqc.prepare
         "for $c in $auction/site/categories/category\n\
          let $n := count($auction/site/people/person/profile/interest[@category = $c/@id])\n\
          where $n > 0\n\
          order by $n descending\n\
          return <cat name=\"{$c/name/text()}\">{$n}</cat>")
      ctx
  in
  Printf.printf "--- interest per category (ad-hoc) ---\n%s\n"
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 5)
          (List.map (fun it -> Xqc.serialize [ it ]) top_categories)))
