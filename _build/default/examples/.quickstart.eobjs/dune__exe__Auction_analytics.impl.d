examples/auction_analytics.ml: List Printf String Unix Xqc Xqc_workload
