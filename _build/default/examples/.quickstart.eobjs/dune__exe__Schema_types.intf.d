examples/schema_types.mli:
