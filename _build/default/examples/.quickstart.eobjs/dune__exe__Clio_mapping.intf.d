examples/clio_mapping.mli:
