examples/schema_types.ml: List Printf String Xqc
