examples/clio_mapping.ml: List Printf String Unix Xqc Xqc_workload
