examples/document_projection.mli:
