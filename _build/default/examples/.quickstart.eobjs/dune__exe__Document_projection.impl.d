examples/document_projection.ml: List Printf String Xqc Xqc_workload
