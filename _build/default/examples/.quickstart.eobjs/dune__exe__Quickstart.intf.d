examples/quickstart.mli:
