examples/quickstart.ml: List Printf Xqc
