(* Clio-style schema mapping (the paper's Figure 1 scenario): transform a
   DBLP-shaped bibliography into an author-centric database with a nested
   mapping query, and watch the unnesting optimizations at work.

     dune exec examples/clio_mapping.exe
*)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  (* A 100KB DBLP-style source document. *)
  let doc = Xqc_workload.Clio.generate ~target_bytes:100_000 () in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "doc" [ Xqc.Item.Node doc ];

  (* The doubly nested mapping query (Table 5's N2): one <author> record
     per author occurrence, with all of that author's publications inside. *)
  let query = Xqc_workload.Clio.n2 in
  Printf.printf "Mapping query (N2):\n%s\n\n" query;

  (* The optimizer turns the nested FLWOR into GroupBy + hash LOuterJoin. *)
  let prepared = Xqc.prepare ~strategy:Xqc.Optimized query in
  (match prepared.Xqc.plan with
  | Some plan ->
      let names = Xqc.Pretty.operator_names plan in
      let count n = List.length (List.filter (String.equal n) names) in
      Printf.printf
        "Optimized plan: %d operators, GroupBy=%d, LOuterJoin=%d, residual \
         MapConcat=%d\n\n"
        (Xqc.Pretty.size plan) (count "GroupBy") (count "LOuterJoin")
        (count "MapConcat")
  | None -> ());

  (* Compare the naive nested-loop evaluation with the optimized plan. *)
  let measure strategy =
    let p = Xqc.prepare ~strategy query in
    let r, dt = time (fun () -> Xqc.run p ctx) in
    (List.length r, Xqc.serialize r, dt)
  in
  let n_nl, out_nl, t_nl = measure Xqc.Optimized_nl in
  let n_opt, out_opt, t_opt = measure Xqc.Optimized in
  Printf.printf "nested-loop join:  %.3fs\nhash join:         %.3fs  (%.1fx faster)\n"
    t_nl t_opt (t_nl /. t_opt);
  assert (n_nl = n_opt && String.equal out_nl out_opt);
  Printf.printf "results identical: %d byte(s) of XML\n\n" (String.length out_opt);

  (* A peek at the output. *)
  let preview = String.sub out_opt 0 (min 400 (String.length out_opt)) in
  Printf.printf "output preview:\n%s...\n" preview
