(* Document projection (Marian & Siméon — the projection technique the
   paper cites and lists as an integration point): before evaluating a
   query, prune the bound documents to the statically inferred paths the
   query can touch.

     dune exec examples/document_projection.exe
*)

let () =
  let doc = Xqc_workload.Xmark.generate ~target_bytes:1_000_000 () in
  let total = Xqc.Node.size doc in
  Printf.printf "XMark document: %d nodes\n\n" total;

  let show name query =
    let prepared = Xqc.prepare ~project:true query in
    (* the inferred projection paths for $auction *)
    (match List.assoc_opt "auction" prepared.Xqc.projection with
    | Some (Some specs) ->
        Printf.printf "%s - inferred projection paths:\n" name;
        List.iter
          (fun (sp : Xqc.Doc_paths.spec) ->
            Printf.printf "  %s%s\n"
              (String.concat "/"
                 (List.map
                    (fun (ax, t) ->
                      Printf.sprintf "%s::%s" (Xqc.Ast.axis_to_string ax)
                        (Xqc.Ast.node_test_to_string t))
                    sp.steps))
              (if sp.subtree then "  (subtree)" else "  (node only)"))
          specs;
        let projected =
          Xqc.Projection.project_specs Xqc.Schema.empty
            (List.map
               (fun (sp : Xqc.Doc_paths.spec) ->
                 { Xqc.Projection.steps = sp.steps; subtree = sp.subtree })
               specs)
            [ Xqc.Item.Node doc ]
        in
        let kept =
          match projected with [ Xqc.Item.Node n ] -> Xqc.Node.size n | _ -> 0
        in
        Printf.printf "  => %d of %d nodes kept (%.1f%%)\n" kept total
          (100.0 *. float_of_int kept /. float_of_int total)
    | _ -> Printf.printf "%s: projection skipped (analysis marked the source unsafe)\n" name);
    (* results are identical with and without projection *)
    let ctx = Xqc.context () in
    Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];
    let plain = Xqc.serialize (Xqc.run (Xqc.prepare query) ctx) in
    let projected = Xqc.serialize (Xqc.run prepared ctx) in
    assert (String.equal plain projected);
    Printf.printf "  results identical (%d bytes)\n\n" (String.length plain)
  in

  show "Q1 (one person's name)" (Xqc_workload.Xmark_queries.q1);
  show "Q5 (count of expensive sales)" (Xqc_workload.Xmark_queries.q5);
  show "Q13 (australian items with description)" (Xqc_workload.Xmark_queries.q13)
