(* Schema validation and type tests: the paper's Section 2 variant of
   XMark Q8, which counts the US sellers among the auctions each person
   bought from — using validate, an "as element(star, Auction)" type
   assertion on the let clause, and a type-test path step selecting the
   USSeller children.

     dune exec examples/schema_types.exe
*)

let auctions_xml =
  {|<site>
      <people>
        <person id="p1"><name>Ada</name></person>
        <person id="p2"><name>Bea</name></person>
        <person id="p3"><name>Cyd</name></person>
      </people>
      <closed_auctions>
        <closed_auction><buyer person="p1"/><seller country="US" person="p2"/><price>10</price></closed_auction>
        <closed_auction><buyer person="p1"/><seller country="FR" person="p3"/><price>20</price></closed_auction>
        <closed_auction><buyer person="p2"/><seller country="US" person="p1"/><price>30</price></closed_auction>
        <closed_auction><buyer person="p1"/><seller country="US" person="p3"/><price>40</price></closed_auction>
      </closed_auctions>
    </site>|}

(* The demo schema: closed_auction elements validate to type Auction;
   seller elements validate to USSeller (derived from Seller) when their
   country attribute is "US", and to EUSeller otherwise; prices become
   typed decimals. *)
let schema =
  Xqc.Schema.empty
  |> Xqc.Schema.declare_element ~name:"closed_auction" ~type_name:"Auction"
  |> Xqc.Schema.declare_element ~name:"seller" ~when_attr:("country", "US")
       ~type_name:"USSeller"
  |> Xqc.Schema.declare_element ~name:"seller" ~type_name:"EUSeller"
  |> Xqc.Schema.derive ~sub:"USSeller" ~base:"Seller"
  |> Xqc.Schema.derive ~sub:"EUSeller" ~base:"Seller"
  |> Xqc.Schema.declare_attribute ~name:"price" ~type_name:"xs:decimal"

(* The paper's query: validate each matching auction, assert the let
   binding's type, and count the US sellers per buyer with a type-test
   step. *)
let query =
  {|for $p in $auction//person
    let $a as element(*,Auction)* :=
      for $t in $auction//closed_auction
      where $t/buyer/@person = $p/@id
      return validate { $t }
    return
      <item person="{$p/name/text()}">
        {count($a/element(*,USSeller))}
      </item>|}

let () =
  let doc = Xqc.parse_document ~uri:"auctions.xml" auctions_xml in
  let ctx = Xqc.context ~schema () in
  Xqc.bind_variable ctx "auction" [ Xqc.Item.Node doc ];

  Printf.printf "query:\n%s\n\n" query;
  List.iter
    (fun s ->
      Printf.printf "%-18s %s\n" (Xqc.strategy_name s)
        (Xqc.serialize (Xqc.run (Xqc.prepare ~strategy:s query) ctx)))
    Xqc.all_strategies;

  (* The optimized plan is the paper's P2: a GroupBy whose pre-grouping
     plan validates each tuple and whose post-grouping plan applies the
     type assertion over the whole partition, on top of an outer join. *)
  print_newline ();
  (match (Xqc.prepare ~strategy:Xqc.Optimized query).Xqc.plan with
  | Some plan ->
      let names = Xqc.Pretty.operator_names plan in
      let count n = List.length (List.filter (String.equal n) names) in
      Printf.printf
        "optimized plan: GroupBy=%d LOuterJoin=%d Validate=%d TypeAssert=%d\n"
        (count "GroupBy") (count "LOuterJoin") (count "Validate")
        (count "TypeAssert")
  | None -> ());

  (* typeswitch over validated data *)
  let q2 =
    {|let $v := validate { ($auction//closed_auctions)[1] }
      for $s in $v/closed_auction/seller
      return typeswitch ($s)
             case element(*, USSeller) return "US"
             case element(*, EUSeller) return "EU"
             default return "?"|}
  in
  Printf.printf "\ntypeswitch on seller types: %s\n"
    (Xqc.serialize (Xqc.run (Xqc.prepare q2) ctx))
