(* Quickstart: parse a document, run queries, inspect the compiled plan.

     dune exec examples/quickstart.exe
*)

let catalog =
  {|<catalog>
      <book year="2001"><title>Data on the Web</title><price>39.95</price></book>
      <book year="2006"><title>XQuery from the Experts</title><price>55.00</price></book>
      <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
    </catalog>|}

let () =
  (* 1. Parse the document and bind it to a variable. *)
  let doc = Xqc.parse_document ~uri:"catalog.xml" catalog in
  let ctx = Xqc.context () in
  Xqc.bind_variable ctx "cat" [ Xqc.Item.Node doc ];

  (* 2. One-shot evaluation. *)
  let run q =
    Printf.printf "query:  %s\nresult: %s\n\n" q
      (Xqc.serialize (Xqc.run (Xqc.prepare q) ctx))
  in
  run "count($cat//book)";
  run "for $b in $cat//book where $b/price < 60 order by $b/price return $b/title/text()";
  run "<cheap>{for $b in $cat//book[price < 40] return $b/title}</cheap>";
  run "avg($cat//price)";

  (* 3. Every engine configuration gives the same answer. *)
  let q = "for $b in $cat//book where $b/@year >= 2000 return $b/title/text()" in
  Printf.printf "strategy comparison for: %s\n" q;
  List.iter
    (fun s ->
      Printf.printf "  %-18s %s\n" (Xqc.strategy_name s)
        (Xqc.serialize (Xqc.run (Xqc.prepare ~strategy:s q) ctx)))
    Xqc.all_strategies;

  (* 4. Look at the compiled plan in the paper's notation. *)
  print_newline ();
  print_string
    (Xqc.explain "for $b in $cat//book where $b/price < 60 return $b/title")
